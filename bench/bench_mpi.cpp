// Coordinated drain vs uncoordinated sender-logged checkpointing for MPI
// jobs, across a rank-count x message-rate sweep (DESIGN.md §14, M1).
//
// The survey's coordinated lineage (CoCheck/CLIP/LAM-MPI; claim C12) pays a
// global quiesce-and-drain whose latency grows with rank count and traffic
// before ANY image can be cut.  Sender-based message logging removes that
// barrier: each rank commits alone at a per-rank latency that does not grow
// with job size, and recovery restarts only the failed rank from its newest
// image plus the logged message suffix.  The price is the log itself —
// bandwidth at send time and resident bytes between checkpoints — which this
// bench reports alongside the latency win.
//
// CI gates (BENCH_mpi.json, path = argv[1]):
//   * uncoordinated mean commit latency < the coordinated barrier
//     (quiesce-to-resume: drain + serialized images) at every sweep point
//     with >= 128 ranks, and flat in rank count (the barrier grows ~linearly
//     while the per-rank commit does not),
//   * zero lost messages (receiver sequence gaps) across every injected
//     crash point of the mpi_uncoordinated replay harness — including the
//     double-failure + journal-persisted-logs configuration,
//   * 1-vs-8-worker byte-identical crash-replay report digests,
//   * rollback depth 1 for single failures and journaled double failures;
//     the unbounded metadata-only domino is detected and refused.
//
// Deterministic (sim + seeded rng; no host timing).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/mpi.hpp"
#include "cluster/uncoordinated.hpp"
#include "core/systemlevel.hpp"
#include "inject/replay.hpp"
#include "storage/journal.hpp"

using namespace ckpt;

namespace {

constexpr int kNodes = 8;
constexpr SimTime kWarmup = 40 * kMillisecond;
constexpr SimTime kInterval = 20 * kMillisecond;

struct Engines {
  std::vector<std::unique_ptr<core::CheckpointEngine>> owned;
  std::vector<core::CheckpointEngine*> raw;
};

Engines make_engines(cluster::Cluster& cluster) {
  Engines engines;
  for (int i = 0; i < cluster.size(); ++i) {
    sim::SimKernel& kernel = cluster.node(i).kernel();
    sim::KernelModule& module = kernel.load_module("blcr");
    engines.owned.push_back(std::make_unique<core::KernelThreadEngine>(
        "blcr", &cluster.remote_storage(), core::EngineOptions{}, kernel,
        core::KernelThreadEngine::ThreadConfig{}, &module));
    engines.raw.push_back(engines.owned.back().get());
  }
  return engines;
}

cluster::MpiRankGuest::Config guest_config(std::uint64_t halo_bytes) {
  cluster::MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  config.halo_bytes = halo_bytes;
  return config;
}

struct SweepPoint {
  int nranks = 0;
  std::uint64_t halo_bytes = 0;
  // Coordinated arm.
  SimTime drain_time = 0;
  SimTime coordinated_total = 0;
  std::uint64_t messages_drained = 0;
  bool coordinated_ok = false;
  // Uncoordinated arm.
  SimTime commit_mean = 0;
  SimTime commit_max = 0;
  std::uint64_t commits = 0;
  std::uint64_t log_bytes_peak = 0;
  std::uint64_t messages_logged = 0;
  std::uint64_t messages_trimmed = 0;
};

SweepPoint run_point(int nranks, std::uint64_t halo_bytes) {
  SweepPoint point;
  point.nranks = nranks;
  point.halo_bytes = halo_bytes;

  {  // Coordinated: quiesce + drain + per-rank images, one global barrier.
    cluster::Cluster cluster(kNodes, cluster::NodeConfig{});
    cluster::MpiJob job(cluster, nranks, guest_config(halo_bytes));
    job.launch();
    cluster.run_until(kWarmup);
    Engines engines = make_engines(cluster);
    const auto result = job.coordinated_checkpoint(engines.raw);
    point.coordinated_ok = result.ok;
    point.drain_time = result.drain_time;
    point.coordinated_total = result.total_time;
    point.messages_drained = result.messages_drained;
  }

  {  // Uncoordinated: per-rank cadence, no barrier, sender-based logging.
    // The cadence scales with ranks-per-node: one engine serves each node's
    // ranks, so a fixed interval would oversubscribe checkpoint capacity at
    // the large points and starve the application — a deployment tunes the
    // interval to capacity, and so does the sweep.  Per-commit latency (the
    // gated metric) is interval-independent.
    const SimTime interval =
        kInterval * std::max<SimTime>(1, nranks / kNodes / 2);
    cluster::Cluster cluster(kNodes, cluster::NodeConfig{});
    cluster::MpiFabric::FabricOptions fabric;
    fabric.latency = cluster.node(0).kernel().costs().net_latency_ns;
    fabric.sender_logging = true;
    cluster::MpiJob job(cluster, nranks, guest_config(halo_bytes), fabric);
    job.launch();
    Engines engines = make_engines(cluster);
    cluster::UncoordinatedOptions options;
    options.policy.initial_interval = interval;
    options.policy.adapt_interval = false;
    options.epoch = 2 * kMillisecond;
    cluster::UncoordinatedMpi manager(cluster, job, engines.raw, options);
    manager.run_until(kWarmup + interval);
    point.commit_mean = manager.stats().mean_commit_latency();
    point.commit_max = manager.stats().commit_latency_max;
    point.commits = manager.stats().commits;
    point.log_bytes_peak = manager.stats().log_bytes_peak;
    point.messages_logged = job.fabric().log().total_recorded();
    point.messages_trimmed = manager.stats().messages_trimmed;
  }
  return point;
}

/// Rollback-depth scenarios: the domino story, measured.
struct DepthReport {
  std::uint32_t single_volatile = 0;  ///< 1 node dies, peers' volatile logs live
  std::uint32_t double_journal = 0;   ///< 2 nodes die, logs journal-restored
  std::uint32_t double_volatile = 0;  ///< 2 nodes die, their logs die too (planned)
  std::uint32_t double_volatile_width = 0;
  bool metadata_only_refused = false;  ///< no payloads: unbounded domino detected
  std::uint64_t lost_messages = 0;     ///< sequence gaps across the executed arms
};

DepthReport run_depth_scenarios() {
  DepthReport report;
  struct Scenario {
    cluster::Cluster cluster{4, cluster::NodeConfig{}};
    std::unique_ptr<cluster::MpiJob> job;
    Engines engines;
    std::unique_ptr<storage::LogStructuredBackend> journal;
    std::unique_ptr<cluster::UncoordinatedMpi> manager;

    Scenario(bool log_payloads, bool with_journal) {
      cluster::MpiFabric::FabricOptions fabric;
      fabric.latency = cluster.node(0).kernel().costs().net_latency_ns;
      fabric.sender_logging = true;
      fabric.log_payloads = log_payloads;
      job = std::make_unique<cluster::MpiJob>(cluster, 8, guest_config(512), fabric);
      job->launch();
      engines = make_engines(cluster);
      cluster::UncoordinatedOptions options;
      options.policy.initial_interval = kInterval;
      options.policy.adapt_interval = false;
      options.epoch = 2 * kMillisecond;
      if (with_journal) {
        journal = std::make_unique<storage::LogStructuredBackend>(
            &cluster.remote_storage());
        options.log_journal = journal.get();
      }
      manager = std::make_unique<cluster::UncoordinatedMpi>(cluster, *job,
                                                            engines.raw, options);
      manager->run_until(50 * kMillisecond);
    }
  };

  {  // Single node failure, volatile peer logs cover the suffix: depth 1.
    Scenario s(/*log_payloads=*/true, /*with_journal=*/false);
    s.cluster.fail_node(2);
    const auto result = s.manager->recover_failed_node(2, /*target=*/1);
    if (result.ok) report.single_volatile = result.line.depth;
    report.lost_messages += s.job->fabric().sequence_violations();
  }
  {  // Concurrent double failure with journal-persisted logs: still depth 1.
    Scenario s(/*log_payloads=*/true, /*with_journal=*/true);
    s.cluster.fail_node(1);
    s.cluster.fail_node(2);
    const auto result = s.manager->recover_failed_node(1, /*target=*/0);
    if (result.ok) report.double_journal = result.line.depth;
    report.lost_messages += s.job->fabric().sequence_violations();
  }
  {  // Same double failure, logs volatile: the cascade extends (planned
     // line only — measuring the domino, not executing it).
    Scenario s(/*log_payloads=*/true, /*with_journal=*/false);
    const cluster::RecoveryLine line =
        s.manager->plan_recovery({1, 2, 5, 6}, {1, 2, 5, 6});
    report.double_volatile = line.depth;
    report.double_volatile_width = line.width;
  }
  {  // Metadata-only logging: dependencies tracked, nothing replayable —
     // recovery must detect the unbounded domino and refuse.
    Scenario s(/*log_payloads=*/false, /*with_journal=*/false);
    s.cluster.fail_node(2);
    const auto result = s.manager->recover_failed_node(2, /*target=*/1);
    report.metadata_only_refused = !result.ok && !result.line.bounded;
  }
  return report;
}

double ms(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  sim::register_standard_guests();
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_mpi.json";
  bench::print_header(
      "bench_mpi -- coordinated drain vs uncoordinated sender-logged commit",
      "message logging removes the drain barrier: per-rank commit latency "
      "stays flat while the coordinated drain grows with rank count, and "
      "recovery restarts only the failed rank with zero lost messages");

  std::vector<SweepPoint> sweep;
  for (const int nranks : {16, 64, 128}) {
    for (const std::uint64_t halo : {std::uint64_t{512}, std::uint64_t{4096}}) {
      sweep.push_back(run_point(nranks, halo));
    }
  }

  util::TextTable table({"ranks", "halo", "drain", "coord total", "uncoord mean",
                         "uncoord max", "commits", "log peak", "logged", "trimmed"});
  bool all_ok = true;
  bool beats_at_128 = true;
  SimTime commit_mean_min = 0;
  SimTime commit_mean_max = 0;
  for (const SweepPoint& point : sweep) {
    all_ok = all_ok && point.coordinated_ok && point.commits > 0;
    if (point.nranks >= 128 && point.commit_mean >= point.coordinated_total) {
      beats_at_128 = false;
    }
    commit_mean_min = commit_mean_min == 0 ? point.commit_mean
                                           : std::min(commit_mean_min, point.commit_mean);
    commit_mean_max = std::max(commit_mean_max, point.commit_mean);
    table.add_row({std::to_string(point.nranks), util::format_bytes(point.halo_bytes),
                   util::format_time_ns(point.drain_time),
                   util::format_time_ns(point.coordinated_total),
                   util::format_time_ns(point.commit_mean),
                   util::format_time_ns(point.commit_max), std::to_string(point.commits),
                   util::format_bytes(point.log_bytes_peak),
                   std::to_string(point.messages_logged),
                   std::to_string(point.messages_trimmed)});
  }
  bench::print_table(table);

  // Crash-point replay: every injected failure recovers with zero sequence
  // gaps, and the report is byte-identical for any worker-pool width.
  inject::MpiReplayOptions replay_options;
  replay_options.crash_points = 6;
  replay_options.workers = 1;
  const inject::MpiReplayReport serial = inject::MpiCrashReplay(replay_options).run();
  replay_options.workers = 8;
  const inject::MpiReplayReport wide = inject::MpiCrashReplay(replay_options).run();
  const bool identical_1v8 = serial == wide;

  inject::MpiReplayOptions double_options;
  double_options.crash_points = 4;
  double_options.double_failure = true;
  double_options.journal_logs = true;
  const inject::MpiReplayReport doubled = inject::MpiCrashReplay(double_options).run();

  const DepthReport depth = run_depth_scenarios();
  const std::uint64_t lost = serial.lost_messages + wide.lost_messages +
                             doubled.lost_messages + depth.lost_messages;

  std::printf("crash replay: %s\n", serial.summary().c_str());
  std::printf("double failure + journal: %s\n", doubled.summary().c_str());
  std::printf("replay report 1-vs-8-worker identical: %s\n", identical_1v8 ? "yes" : "NO");
  std::printf(
      "rollback depth: single/volatile=%u double/journal=%u double/volatile=%u "
      "(width %u) metadata-only refused=%s\n",
      depth.single_volatile, depth.double_journal, depth.double_volatile,
      depth.double_volatile_width, depth.metadata_only_refused ? "yes" : "NO");

  // The per-rank commit must not grow with job size the way the barrier
  // does: allow 50% spread across the whole sweep.
  const bool commit_flat = commit_mean_max * 2 <= commit_mean_min * 3;
  std::printf("uncoordinated commit mean across sweep: %.3f..%.3f ms (flat: %s)\n",
              ms(commit_mean_min), ms(commit_mean_max), commit_flat ? "yes" : "NO");

  const bool depth_ok = depth.single_volatile == 1 && depth.double_journal == 1 &&
                        depth.metadata_only_refused;
  const bool holds = all_ok && beats_at_128 && commit_flat && serial.ok() &&
                     doubled.ok() && identical_1v8 && lost == 0 && depth_ok;
  bench::print_verdict(holds,
                       "sender-based logging converts the growing drain barrier into "
                       "a flat per-rank commit, keeps every crash point lossless and "
                       "worker-count invariant, and bounds rollback at depth 1 "
                       "whenever a covering log survives");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_mpi\",\n");
  std::fprintf(json, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    std::fprintf(json,
                 "    {\"nranks\": %d, \"halo_bytes\": %llu, \"drain_ms\": %.3f, "
                 "\"coordinated_total_ms\": %.3f, \"uncoordinated_commit_mean_ms\": %.3f, "
                 "\"uncoordinated_commit_max_ms\": %.3f, \"commits\": %llu, "
                 "\"log_bytes_peak\": %llu, \"messages_logged\": %llu, "
                 "\"messages_trimmed\": %llu}%s\n",
                 point.nranks, static_cast<unsigned long long>(point.halo_bytes),
                 ms(point.drain_time), ms(point.coordinated_total), ms(point.commit_mean),
                 ms(point.commit_max), static_cast<unsigned long long>(point.commits),
                 static_cast<unsigned long long>(point.log_bytes_peak),
                 static_cast<unsigned long long>(point.messages_logged),
                 static_cast<unsigned long long>(point.messages_trimmed),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"uncoordinated_beats_coordinated_at_128\": %s,\n",
               beats_at_128 ? "true" : "false");
  std::fprintf(json, "  \"commit_latency_flat\": %s,\n", commit_flat ? "true" : "false");
  std::fprintf(json, "  \"lost_messages\": %llu,\n",
               static_cast<unsigned long long>(lost));
  std::fprintf(json, "  \"duplicates_dropped\": %llu,\n",
               static_cast<unsigned long long>(serial.duplicates_dropped +
                                               doubled.duplicates_dropped));
  std::fprintf(json, "  \"replayed_messages\": %llu,\n",
               static_cast<unsigned long long>(serial.replayed_messages));
  std::fprintf(json, "  \"identical_1v8\": %s,\n", identical_1v8 ? "true" : "false");
  std::fprintf(json, "  \"outcome_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(serial.outcome_digest));
  std::fprintf(json, "  \"rollback_depth_single_volatile\": %u,\n", depth.single_volatile);
  std::fprintf(json, "  \"rollback_depth_double_journal\": %u,\n", depth.double_journal);
  std::fprintf(json, "  \"rollback_depth_double_volatile\": %u,\n", depth.double_volatile);
  std::fprintf(json, "  \"metadata_only_refused\": %s,\n",
               depth.metadata_only_refused ? "true" : "false");
  std::fprintf(json, "  \"holds\": %s\n}\n", holds ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
