// C7 (§4.1) — Data-consistency strategies for non-cooperative checkpointing:
// stop-the-world halts the application for the whole capture; fork() lets
// it keep running against COW costs; doing nothing (concurrent copy) tears
// the snapshot.
//
// For each strategy: application progress during the checkpoint, COW faults
// paid, capture latency, and whether the captured image satisfies the
// guest's cross-page invariant.
#include <cstdio>

#include "bench_common.hpp"
#include "core/systemlevel.hpp"
#include "obs/observer.hpp"

using namespace ckpt;

namespace {

struct Sample {
  std::uint64_t progress_during = 0;
  std::uint64_t cow_faults = 0;     ///< engine-measured: ckpt.cow_faults metric
  SimTime cow_fault_time = 0;       ///< engine-measured: ckpt.cow_fault_ns metric
  SimTime capture_time = 0;
  bool consistent = false;
};

Sample run(core::ConsistencyMode mode, int ncpus) {
  obs::Observer observer;  // outlives the kernel it observes
  sim::SimKernel kernel(ncpus);
  kernel.set_observer(&observer);
  storage::LocalDiskBackend backend{kernel.costs()};
  sim::KernelModule& module = kernel.load_module("kt");
  core::EngineOptions options;
  options.consistency = mode;
  core::KernelThreadEngine::ThreadConfig config;
  config.pages_per_step = 4;  // slow copier so the capture spans many quanta
  core::KernelThreadEngine engine("kt", &backend, options, kernel, config, &module);

  sim::WriterConfig guest_config;
  guest_config.array_bytes = 96 * sim::kPageSize;
  const sim::Pid pid =
      kernel.spawn(sim::InvariantGuest::kTypeName, guest_config.encode(),
                   sim::spawn_options_for_array(guest_config.array_bytes));
  kernel.run_until(kernel.now() + 5 * kMillisecond);

  Sample sample;
  sim::Process& proc = kernel.process(pid);
  const std::uint64_t iters_before = proc.stats.guest_iterations;
  const auto result = engine.request_checkpoint(kernel, pid);
  if (!result.ok) return sample;
  sample.progress_during = proc.stats.guest_iterations - iters_before;
  // COW activity as the engine itself accounts it (the ckpt.cow_faults /
  // ckpt.cow_fault_ns metrics), not a bench-side subtraction.
  sample.cow_faults = observer.metrics().counter("ckpt.cow_faults");
  sample.cow_fault_time = observer.metrics().counter("ckpt.cow_fault_ns");
  sample.capture_time = result.total_latency();

  const auto restored = engine.restart(kernel, pid);
  if (restored.ok) {
    sample.consistent = sim::InvariantGuest::verify_consistency(
        kernel, kernel.process(restored.pid), guest_config.array_bytes);
  }
  return sample;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header(
      "C7 -- consistency strategy: stop-the-world vs fork() vs concurrent copy",
      "\"a mechanism to stop the application is necessary ... An alternative "
      "approach consists in forking the application and leave it running\" "
      "(section 4.1)");

  util::TextTable table({"strategy", "cpus", "app steps during ckpt", "COW faults",
                         "COW fault time", "capture time", "image consistent"});
  const Sample stop = run(core::ConsistencyMode::kStopTarget, 2);
  const Sample fork = run(core::ConsistencyMode::kForkAndCopy, 2);
  const Sample conc = run(core::ConsistencyMode::kConcurrent, 2);
  auto row = [&](const char* label, const Sample& s) {
    table.add_row({label, "2", std::to_string(s.progress_during),
                   std::to_string(s.cow_faults), util::format_time_ns(s.cow_fault_time),
                   util::format_time_ns(s.capture_time),
                   s.consistent ? "yes" : "NO (torn)"});
  };
  row("stop target", stop);
  row("fork and copy", fork);
  row("concurrent (unprotected)", conc);
  bench::print_table(table);

  bench::print_verdict(stop.consistent && fork.consistent && !conc.consistent &&
                           fork.progress_during > stop.progress_during &&
                           fork.cow_faults > stop.cow_faults,
                       "fork keeps the app running (at COW cost) with a consistent "
                       "image; unprotected concurrent copy tears");
  return 0;
}
