// C1 (§3) — User-level state extraction costs syscall crossings that
// kernel-level capture avoids.
//
// The same process state is captured twice: once through the user-level
// library (sbrk(0), /proc/self/maps walk, lseek per descriptor,
// sigpending(), user-space page reads, write()-out) and once in kernel mode
// (direct task-structure reads, kernel page copies).  Series: capture cost
// and syscalls versus number of open descriptors and memory size.
#include <cstdio>

#include "bench_common.hpp"
#include "core/capture.hpp"
#include "sim/userapi.hpp"

using namespace ckpt;

namespace {

struct Sample {
  std::uint64_t user_syscalls;
  SimTime user_time;
  SimTime kernel_time;
};

Sample measure(std::uint64_t array_kib, int open_files) {
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = array_kib * 1024;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  sim::Process& proc = kernel.process(pid);
  core::UserLevelRuntime runtime;
  runtime.install(kernel, proc, false);
  sim::UserApi api(kernel, proc);
  for (int i = 0; i < open_files; ++i) {
    api.sys_open("/data/file" + std::to_string(i), sim::kOpenCreate | sim::kOpenWrite);
  }
  kernel.run_until(kernel.now() + 10 * kMillisecond);

  // Captures run outside a scheduling step here, so all charged time lands
  // on the global clock: measure wall-clock deltas.
  Sample sample{};
  const auto syscalls_before = proc.stats.syscalls;
  const SimTime t0 = kernel.now();
  (void)runtime.capture(api, core::CaptureOptions{});
  sample.user_syscalls = proc.stats.syscalls - syscalls_before;
  sample.user_time = kernel.now() - t0;

  const SimTime t1 = kernel.now();
  (void)core::capture_kernel_level(kernel, proc, core::CaptureOptions{});
  sample.kernel_time = kernel.now() - t1;
  return sample;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C1 -- user-level vs kernel-level state extraction cost",
                      "\"...it entails much context switching between user and kernel "
                      "modes because of the number of system calls...\" (survey section 3)");

  util::TextTable table({"memory", "open fds", "user syscalls", "user capture",
                         "kernel capture", "user/kernel"});
  bool holds = true;
  for (std::uint64_t kib : {64, 256, 1024}) {
    for (int fds : {0, 8, 64}) {
      const Sample s = measure(kib, fds);
      holds = holds && s.user_time > s.kernel_time && s.user_syscalls > 0;
      table.add_row({util::format_bytes(kib * 1024), std::to_string(fds),
                     std::to_string(s.user_syscalls), util::format_time_ns(s.user_time),
                     util::format_time_ns(s.kernel_time),
                     util::format_double(static_cast<double>(s.user_time) /
                                         static_cast<double>(s.kernel_time))});
    }
  }
  bench::print_table(table);
  bench::print_verdict(holds,
                       "user-level capture pays syscall crossings that grow with state "
                       "size; kernel-level capture reads the task structure directly");
  return 0;
}
