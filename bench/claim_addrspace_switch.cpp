// C5 (§4.1) — A kernel thread "does not have a proper process address
// space ... it uses the page tables of the task it interrupted"; touching a
// different user address space forces a switch and TLB invalidation.  The
// system-call and kernel-signal approaches execute behind the checkpointed
// process and never switch.
//
// We count *kernel-access* address-space switches (the capture's own, as
// opposed to the scheduler's) for each engine context.  The kernel thread
// re-pays a switch after every preemption by another task, so a timeshared
// thread on a busy machine pays per quantum; a SCHED_FIFO thread pays at
// most once; in-context engines pay nothing.
#include <cstdio>

#include "bench_common.hpp"
#include "core/systemlevel.hpp"

using namespace ckpt;

namespace {

struct Sample {
  std::uint64_t access_switches = 0;
  SimTime capture_time = 0;
};

Sample run_self() {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  core::SyscallEngine engine("eng", &backend, core::EngineOptions{}, kernel,
                             core::SyscallEngine::TargetMode::kCurrent, nullptr);
  sim::SelfCheckpointGuest::Config config;
  config.syscall_name = engine.dump_syscall();
  config.interval_steps = 20;
  kernel.spawn(sim::SelfCheckpointGuest::kTypeName, config.encode(),
               sim::spawn_options_for_array(512 * 1024));
  for (int i = 0; i < 6; ++i) kernel.spawn(sim::CounterGuest::kTypeName);
  const std::uint64_t before = kernel.stats().kernel_access_switches;
  kernel.run_while([&] { return engine.history().empty(); }, 10 * kSecond);
  Sample sample;
  sample.access_switches = kernel.stats().kernel_access_switches - before;
  if (!engine.history().empty()) sample.capture_time = engine.history().front().total_latency();
  return sample;
}

Sample run_signal() {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  core::KernelSignalEngine engine("eng", &backend, core::EngineOptions{}, kernel,
                                  sim::kSigCkpt, nullptr);
  sim::WriterConfig config;
  config.array_bytes = 512 * 1024;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  for (int i = 0; i < 6; ++i) kernel.spawn(sim::CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  const std::uint64_t before = kernel.stats().kernel_access_switches;
  const auto result = engine.request_checkpoint(kernel, pid);
  return {kernel.stats().kernel_access_switches - before, result.total_latency()};
}

Sample run_kthread(sim::SchedClass cls, int background) {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  sim::KernelModule& module = kernel.load_module("kt");
  core::KernelThreadEngine::ThreadConfig config;
  config.pages_per_step = 16;
  config.sched = cls == sim::SchedClass::kFifo
                     ? sim::SchedParams{sim::SchedClass::kFifo, 50, 0, 0}
                     : sim::SchedParams{sim::SchedClass::kTimeshare, 0, 0, 0};
  core::KernelThreadEngine engine("kt", &backend, core::EngineOptions{}, kernel, config,
                                  &module);
  sim::WriterConfig guest_config;
  guest_config.array_bytes = 512 * 1024;
  const sim::Pid pid =
      kernel.spawn(sim::SparseWriterGuest::kTypeName, guest_config.encode(),
                   sim::spawn_options_for_array(guest_config.array_bytes));
  for (int i = 0; i < background; ++i) kernel.spawn(sim::CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  const std::uint64_t before = kernel.stats().kernel_access_switches;
  const auto result = engine.request_checkpoint(kernel, pid);
  return {kernel.stats().kernel_access_switches - before, result.total_latency()};
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C5 -- capture-driven address-space switches by engine context",
                      "\"the actual process address space is still the same of the "
                      "process running in user mode ... a kernel thread ... may "
                      "invalidate the TLB cache\" (section 4.1)");

  const Sample self = run_self();
  const Sample signal = run_signal();
  const Sample fifo = run_kthread(sim::SchedClass::kFifo, 6);
  const Sample timeshare = run_kthread(sim::SchedClass::kTimeshare, 6);

  util::TextTable table({"capture context", "background", "TLB-invalidating switches",
                         "capture latency"});
  table.add_row({"system call, self (`current`)", "6", std::to_string(self.access_switches),
                 util::format_time_ns(self.capture_time)});
  table.add_row({"kernel signal (target context)", "6",
                 std::to_string(signal.access_switches),
                 util::format_time_ns(signal.capture_time)});
  table.add_row({"kernel thread, SCHED_FIFO", "6", std::to_string(fifo.access_switches),
                 util::format_time_ns(fifo.capture_time)});
  table.add_row({"kernel thread, timeshared", "6",
                 std::to_string(timeshare.access_switches),
                 util::format_time_ns(timeshare.capture_time)});
  bench::print_table(table);

  // SCHED_FIFO pays at most one switch — zero when it happened to interrupt
  // the target itself, the very case the survey notes needs no switch.
  bench::print_verdict(self.access_switches == 0 && signal.access_switches == 0 &&
                           fifo.access_switches <= 1 &&
                           timeshare.access_switches > fifo.access_switches + 2,
                       "in-context engines never switch; the preempted (timeshared) "
                       "kernel thread re-pays a TLB-invalidating switch per copy "
                       "burst, while SCHED_FIFO bounds it at one");
  return 0;
}
