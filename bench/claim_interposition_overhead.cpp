// C2 (§3) — Syscall interposition (the LD_PRELOAD shadow-tracking tax) adds
// run-time overhead to the application for its entire lifetime.
//
// The same syscall-heavy workload runs plain, under an interposing
// user-level checkpoint library, and inside a ZAP pod (kernel-side
// interception).  Series: application slowdown per syscall rate.
#include <cstdio>

#include "bench_common.hpp"
#include "core/capture.hpp"
#include "core/pod.hpp"

using namespace ckpt;

namespace {

SimTime run_logger(bool interpose, bool pod, std::uint64_t steps) {
  sim::SimKernel kernel;
  const sim::Pid pid = kernel.spawn(sim::FileLoggerGuest::kTypeName,
                                    sim::FileLoggerGuest::Config{}.encode());
  sim::Process& proc = kernel.process(pid);
  core::UserLevelRuntime runtime;
  if (interpose) runtime.install(kernel, proc, /*via_preload=*/true);
  core::PodManager pods;
  if (pod) {
    core::Pod& p = pods.create_pod("p");
    pods.adopt(kernel, pid, p.id);
  }
  kernel.run_while([&] { return proc.alive() && proc.stats.guest_iterations < steps; },
                   kernel.now() + 60 * kSecond);
  return proc.stats.syscall_time;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C2 -- run-time overhead of syscall interception",
                      "\"This approach is extremely undesirable because of added "
                      "run-time overhead\" (section 3); ZAP's virtualization "
                      "\"introduces some run-time overhead\" (section 4.1)");

  util::TextTable table({"steps", "plain syscall time", "LD_PRELOAD", "ZAP pod",
                         "preload tax", "pod tax"});
  bool holds = true;
  for (std::uint64_t steps : {200, 1000, 4000}) {
    const SimTime plain = run_logger(false, false, steps);
    const SimTime preload = run_logger(true, false, steps);
    const SimTime pod = run_logger(false, true, steps);
    holds = holds && preload > plain && pod > plain;
    table.add_row({std::to_string(steps), util::format_time_ns(plain),
                   util::format_time_ns(preload), util::format_time_ns(pod),
                   util::format_double(static_cast<double>(preload) / plain, 3),
                   util::format_double(static_cast<double>(pod) / plain, 3)});
  }
  bench::print_table(table);
  bench::print_verdict(holds,
                       "interposition and pod translation each tax every system call "
                       "for the process's whole lifetime");
  return 0;
}
