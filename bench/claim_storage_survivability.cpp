// C8 (§4, Table 1) — "Most store the checkpoint locally instead of remotely,
// thus checkpoint data cannot be retrieved in case of a failure of the
// machine."
//
// A long job runs on a cluster under MTBF-driven fail-stop failures with
// periodic checkpoints to (a) local disk and (b) remote storage.  After
// each failure we attempt recovery on a surviving node.  Series: recovery
// success rate and useful work preserved, versus MTBF.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "core/capture.hpp"
#include "core/engine.hpp"
#include "inject/torture.hpp"
#include "storage/replicated.hpp"

using namespace ckpt;

namespace {

struct Outcome {
  int failures = 0;
  int recovered = 0;
  std::uint64_t work_preserved = 0;  // counter value at last recovery
};

Outcome run(bool remote_storage, SimTime mtbf, std::uint64_t seed) {
  cluster::Cluster cluster(4, cluster::NodeConfig{});
  // The job runs on node 0; checkpoints go local or remote.
  sim::Pid pid = cluster.node(0).kernel().spawn(sim::CounterGuest::kTypeName);
  int home = 0;

  Outcome outcome;
  std::vector<storage::ImageId> chain_ids;
  storage::StorageBackend* backend =
      remote_storage ? static_cast<storage::StorageBackend*>(&cluster.remote_storage())
                     : &cluster.node(0).disk();

  // Periodic checkpoint every 200ms of cluster time, plus one at launch so
  // the job is always restorable.
  const SimTime ckpt_every = 200 * kMillisecond;
  auto take_checkpoint = [&](cluster::Cluster& c) {
    if (home < 0 || !c.node(home).up()) return;
    sim::SimKernel& kernel = c.node(home).kernel();
    if (sim::Process* proc = kernel.find_process(pid); proc != nullptr && proc->alive()) {
      storage::StorageBackend* target = remote_storage ? backend : &c.node(home).disk();
      const auto image = core::capture_kernel_level(kernel, *proc, core::CaptureOptions{});
      const storage::ImageId id = target->store(image, nullptr);
      if (id != storage::kBadImageId) chain_ids.push_back(id);
    }
  };
  take_checkpoint(cluster);
  std::function<void(cluster::Cluster&)> tick = [&](cluster::Cluster& c) {
    take_checkpoint(c);
    c.add_event(c.now() + ckpt_every, tick);
  };
  cluster.add_event(ckpt_every, tick);

  // Recovery: restart the newest retrievable image on the lowest-numbered
  // surviving node; while the whole cluster is down (a capacity outage, not
  // a storage loss) keep retrying.
  storage::StorageBackend* recover_source = nullptr;
  std::function<void(cluster::Cluster&)> try_recover = [&](cluster::Cluster& c) {
    if (home >= 0 || recover_source == nullptr) return;  // nothing to do
    for (auto it = chain_ids.rbegin(); it != chain_ids.rend(); ++it) {
      const auto image = recover_source->load(*it, nullptr);
      if (!image.has_value()) continue;  // local disk down: unretrievable
      const auto up = c.up_nodes();
      if (up.empty()) {
        c.add_event(c.now() + 500 * kMillisecond, [&](cluster::Cluster& c2) {
          try_recover(c2);
        });
        return;
      }
      const auto result = core::restart_from_image(c.node(up[0]).kernel(), *image);
      if (result.ok) {
        ++outcome.recovered;
        home = up[0];
        pid = result.pid;
        outcome.work_preserved = image->taken_at;
      }
      return;
    }
  };

  cluster.on_failure([&](cluster::Cluster& c, int node) {
    if (node != home) return;
    // The machine hosting the job died; only these failures count.
    ++outcome.failures;
    const int failed = node;
    home = -1;  // the job is down until a recovery succeeds
    recover_source = remote_storage
                         ? static_cast<storage::StorageBackend*>(&c.remote_storage())
                         : &c.node(failed).disk();
    try_recover(c);
  });

  cluster::FailureModel model;
  model.mtbf = mtbf;
  model.repair_time = 2 * kSecond;
  model.seed = seed;
  cluster::FailureInjector injector(cluster, model);
  injector.arm(20 * kSecond);
  cluster.run_until(20 * kSecond, 50 * kMillisecond);
  return outcome;
}

// --- Replication-width sweep -----------------------------------------------
//
// The self-healing follow-up to the local-vs-remote result: drive the PR 1
// torture schedule (storage faults only) against unreplicated, 2-way and
// 3-way ReplicatedStore configurations and compare what each width costs
// (charged store time per checkpoint) against what it buys (restart success
// under single-replica faults).

std::vector<inject::FaultPlan::Weighted> storage_only_mix() {
  using inject::FaultKind;
  return {
      {FaultKind::kNone, 2},          {FaultKind::kStoreReject, 2},
      {FaultKind::kTornStore, 2},     {FaultKind::kCorruptImage, 2},
      {FaultKind::kStorageOutage, 2},
  };
}

inject::TortureReport run_width(std::uint32_t width, std::uint64_t seed) {
  inject::TortureOptions options;
  options.seed = seed;
  options.cycles = 110;
  options.fault_mix = storage_only_mix();
  options.replicated_storage = width >= 2;
  options.replicas = width;
  inject::TortureHarness harness(options);
  return harness.run(inject::TortureTarget{"CRAK", nullptr});
}

/// Charged simulated time to store one torture-sized (16 KiB working set)
/// image through a width-N replicated store — the replication overhead.
SimTime store_cost(std::uint32_t width) {
  const sim::CostModel costs{};
  storage::LocalDiskBackend local{costs};
  std::vector<std::unique_ptr<storage::RemoteBackend>> remotes;
  std::vector<storage::BlobStoreBackend*> replicas{&local};
  for (std::uint32_t i = 1; i < width; ++i) {
    remotes.push_back(std::make_unique<storage::RemoteBackend>(costs));
    replicas.push_back(remotes.back().get());
  }
  storage::ReplicatedStore store(replicas, {});

  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.threads.push_back(storage::ThreadImage{1, {}});
  storage::MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(0x10000), 4, sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::uint64_t p = 0; p < 4; ++p) {
    storage::PageImage page;
    page.page = seg.vma.first_page + p;
    page.data.assign(sim::kPageSize, std::byte{0x5A});
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));

  SimTime charged = 0;
  store.store(image, [&](SimTime t) { charged += t; });
  return charged;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C8 -- checkpoint survivability: local vs remote stable storage",
                      "\"checkpoint data cannot be retrieved in case of a failure of "
                      "the machine\" (section 4)");

  util::TextTable table(
      {"MTBF/node", "storage", "job-node failures", "recoveries", "recovery rate"});
  double local_rate = 1.0, remote_rate = 0.0;
  for (SimTime mtbf : {3 * kSecond, 8 * kSecond}) {
    for (bool remote : {false, true}) {
      Outcome total;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Outcome o = run(remote, mtbf, seed);
        total.failures += o.failures;
        total.recovered += o.recovered;
      }
      const double rate =
          total.failures == 0
              ? 1.0
              : static_cast<double>(total.recovered) / static_cast<double>(total.failures);
      if (mtbf == 3 * kSecond) (remote ? remote_rate : local_rate) = rate;
      table.add_row({util::format_time_ns(mtbf), remote ? "remote" : "local",
                     std::to_string(total.failures), std::to_string(total.recovered),
                     util::format_double(rate * 100, 1) + "%"});
    }
  }
  bench::print_table(table);
  bench::print_verdict(remote_rate > 0.99 && local_rate < 0.5,
                       "remote storage recovers after every job-node failure; local "
                       "storage strands the image on the dead machine");

  std::printf("\nReplication-width sweep (PR 1 storage-fault schedule, 110 cycles, CRAK):\n");
  util::TextTable widths({"replicas", "ckpts ok", "ckpts lost", "restarts ok",
                          "restarts lost", "restart rate", "scrub repairs",
                          "store cost/ckpt"});
  double rate_1way = 1.0, rate_2way = 0.0, rate_3way = 0.0;
  std::uint64_t data_loss_with_intact = 0;
  for (std::uint32_t width : {1u, 2u, 3u}) {
    const inject::TortureReport report = run_width(width, /*seed=*/0x5eed2026);
    const std::uint64_t lost = report.restarts_refused + report.unexpected_failures;
    const double rate =
        report.restarts_ok + lost == 0
            ? 1.0
            : static_cast<double>(report.restarts_ok) /
                  static_cast<double>(report.restarts_ok + lost);
    // The CI gate: losing a restart while an intact replica of a committed
    // image existed is exactly an unexpected_failure in the harness model.
    data_loss_with_intact += report.unexpected_failures + report.scrub_failures;
    if (width == 1) rate_1way = rate;
    if (width == 2) rate_2way = rate;
    if (width == 3) rate_3way = rate;
    widths.add_row({std::to_string(width), std::to_string(report.checkpoints_ok),
                    std::to_string(report.checkpoints_failed),
                    std::to_string(report.restarts_ok), std::to_string(lost),
                    util::format_double(rate * 100, 1) + "%",
                    std::to_string(report.scrub_repairs),
                    util::format_time_ns(store_cost(width))});
  }
  bench::print_table(widths);
  std::printf("data-loss-with-intact-replica events: %llu\n",
              static_cast<unsigned long long>(data_loss_with_intact));
  bench::print_verdict(
      rate_1way < 0.999 && rate_2way > 0.999 && rate_3way > 0.999 &&
          data_loss_with_intact == 0,
      "single-replica storage faults strand unreplicated checkpoints, while "
      "2-way and 3-way replication with verify+retry+scrub recover every "
      "restart and never lose state that still had an intact replica");
  return 0;
}
