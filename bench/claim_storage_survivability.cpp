// C8 (§4, Table 1) — "Most store the checkpoint locally instead of remotely,
// thus checkpoint data cannot be retrieved in case of a failure of the
// machine."
//
// A long job runs on a cluster under MTBF-driven fail-stop failures with
// periodic checkpoints to (a) local disk and (b) remote storage.  After
// each failure we attempt recovery on a surviving node.  Series: recovery
// success rate and useful work preserved, versus MTBF.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "core/capture.hpp"
#include "core/engine.hpp"

using namespace ckpt;

namespace {

struct Outcome {
  int failures = 0;
  int recovered = 0;
  std::uint64_t work_preserved = 0;  // counter value at last recovery
};

Outcome run(bool remote_storage, SimTime mtbf, std::uint64_t seed) {
  cluster::Cluster cluster(4, cluster::NodeConfig{});
  // The job runs on node 0; checkpoints go local or remote.
  sim::Pid pid = cluster.node(0).kernel().spawn(sim::CounterGuest::kTypeName);
  int home = 0;

  Outcome outcome;
  std::vector<storage::ImageId> chain_ids;
  storage::StorageBackend* backend =
      remote_storage ? static_cast<storage::StorageBackend*>(&cluster.remote_storage())
                     : &cluster.node(0).disk();

  // Periodic checkpoint every 200ms of cluster time, plus one at launch so
  // the job is always restorable.
  const SimTime ckpt_every = 200 * kMillisecond;
  auto take_checkpoint = [&](cluster::Cluster& c) {
    if (home < 0 || !c.node(home).up()) return;
    sim::SimKernel& kernel = c.node(home).kernel();
    if (sim::Process* proc = kernel.find_process(pid); proc != nullptr && proc->alive()) {
      storage::StorageBackend* target = remote_storage ? backend : &c.node(home).disk();
      const auto image = core::capture_kernel_level(kernel, *proc, core::CaptureOptions{});
      const storage::ImageId id = target->store(image, nullptr);
      if (id != storage::kBadImageId) chain_ids.push_back(id);
    }
  };
  take_checkpoint(cluster);
  std::function<void(cluster::Cluster&)> tick = [&](cluster::Cluster& c) {
    take_checkpoint(c);
    c.add_event(c.now() + ckpt_every, tick);
  };
  cluster.add_event(ckpt_every, tick);

  // Recovery: restart the newest retrievable image on the lowest-numbered
  // surviving node; while the whole cluster is down (a capacity outage, not
  // a storage loss) keep retrying.
  storage::StorageBackend* recover_source = nullptr;
  std::function<void(cluster::Cluster&)> try_recover = [&](cluster::Cluster& c) {
    if (home >= 0 || recover_source == nullptr) return;  // nothing to do
    for (auto it = chain_ids.rbegin(); it != chain_ids.rend(); ++it) {
      const auto image = recover_source->load(*it, nullptr);
      if (!image.has_value()) continue;  // local disk down: unretrievable
      const auto up = c.up_nodes();
      if (up.empty()) {
        c.add_event(c.now() + 500 * kMillisecond, [&](cluster::Cluster& c2) {
          try_recover(c2);
        });
        return;
      }
      const auto result = core::restart_from_image(c.node(up[0]).kernel(), *image);
      if (result.ok) {
        ++outcome.recovered;
        home = up[0];
        pid = result.pid;
        outcome.work_preserved = image->taken_at;
      }
      return;
    }
  };

  cluster.on_failure([&](cluster::Cluster& c, int node) {
    if (node != home) return;
    // The machine hosting the job died; only these failures count.
    ++outcome.failures;
    const int failed = node;
    home = -1;  // the job is down until a recovery succeeds
    recover_source = remote_storage
                         ? static_cast<storage::StorageBackend*>(&c.remote_storage())
                         : &c.node(failed).disk();
    try_recover(c);
  });

  cluster::FailureModel model;
  model.mtbf = mtbf;
  model.repair_time = 2 * kSecond;
  model.seed = seed;
  cluster::FailureInjector injector(cluster, model);
  injector.arm(20 * kSecond);
  cluster.run_until(20 * kSecond, 50 * kMillisecond);
  return outcome;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C8 -- checkpoint survivability: local vs remote stable storage",
                      "\"checkpoint data cannot be retrieved in case of a failure of "
                      "the machine\" (section 4)");

  util::TextTable table(
      {"MTBF/node", "storage", "job-node failures", "recoveries", "recovery rate"});
  double local_rate = 1.0, remote_rate = 0.0;
  for (SimTime mtbf : {3 * kSecond, 8 * kSecond}) {
    for (bool remote : {false, true}) {
      Outcome total;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Outcome o = run(remote, mtbf, seed);
        total.failures += o.failures;
        total.recovered += o.recovered;
      }
      const double rate =
          total.failures == 0
              ? 1.0
              : static_cast<double>(total.recovered) / static_cast<double>(total.failures);
      if (mtbf == 3 * kSecond) (remote ? remote_rate : local_rate) = rate;
      table.add_row({util::format_time_ns(mtbf), remote ? "remote" : "local",
                     std::to_string(total.failures), std::to_string(total.recovered),
                     util::format_double(rate * 100, 1) + "%"});
    }
  }
  bench::print_table(table);
  bench::print_verdict(remote_rate > 0.99 && local_rate < 0.5,
                       "remote storage recovers after every job-node failure; local "
                       "storage strands the image on the dead machine");
  return 0;
}
