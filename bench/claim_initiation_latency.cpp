// C6 (§4.1) — Kernel-signal delivery is deferred to the target's next
// kernel->user transition, so checkpoint initiation latency grows with
// system load; a SCHED_FIFO kernel thread starts promptly regardless, while
// a timeshared kernel thread degrades like the signal.
#include <cstdio>

#include "bench_common.hpp"
#include "core/systemlevel.hpp"

using namespace ckpt;

namespace {

SimTime latency_signal(int load) {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  core::KernelSignalEngine engine("sig", &backend, core::EngineOptions{}, kernel,
                                  sim::kSigCkpt, nullptr);
  const sim::Pid target = kernel.spawn(sim::CounterGuest::kTypeName);
  for (int i = 0; i < load; ++i) kernel.spawn(sim::CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 10 * kMillisecond);
  const auto result = engine.request_checkpoint(kernel, target);
  return result.ok ? result.initiation_latency() : 0;
}

SimTime latency_kthread(int load, sim::SchedClass cls) {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  sim::KernelModule& module = kernel.load_module("kt");
  core::KernelThreadEngine::ThreadConfig config;
  config.sched = cls == sim::SchedClass::kFifo
                     ? sim::SchedParams{sim::SchedClass::kFifo, 50, 0, 0}
                     : sim::SchedParams{sim::SchedClass::kTimeshare, 0, 0, 0};
  core::KernelThreadEngine engine("kt", &backend, core::EngineOptions{}, kernel, config,
                                  &module);
  const sim::Pid target = kernel.spawn(sim::CounterGuest::kTypeName);
  for (int i = 0; i < load; ++i) kernel.spawn(sim::CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 10 * kMillisecond);
  const auto result = engine.request_checkpoint(kernel, target);
  return result.ok ? result.initiation_latency() : 0;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header(
      "C6 -- checkpoint initiation latency vs system load",
      "\"there is no way to know when the signal handler will be executed\" "
      "(section 4.1); a SCHED_FIFO kernel thread \"will be executed as soon "
      "as it wakes up\"");

  util::TextTable table({"competing procs", "kernel signal", "kthread timeshare",
                         "kthread SCHED_FIFO"});
  SimTime sig_idle = 0, sig_loaded = 0, fifo_loaded = 0;
  for (int load : {0, 4, 16, 48}) {
    const SimTime sig = latency_signal(load);
    const SimTime ts = latency_kthread(load, sim::SchedClass::kTimeshare);
    const SimTime fifo = latency_kthread(load, sim::SchedClass::kFifo);
    if (load == 0) sig_idle = sig;
    if (load == 48) {
      sig_loaded = sig;
      fifo_loaded = fifo;
    }
    table.add_row({std::to_string(load), util::format_time_ns(sig),
                   util::format_time_ns(ts), util::format_time_ns(fifo)});
  }
  bench::print_table(table);
  bench::print_verdict(sig_loaded > sig_idle + 1 * kMillisecond &&
                           fifo_loaded < sig_loaded,
                       "signal-based initiation degrades linearly with runnable "
                       "tasks; the SCHED_FIFO kernel thread stays prompt");
  return 0;
}
