// C9 (§1) — Self-managing checkpoint-interval adaptation: "adjustment of
// the checkpoint interval to the failure rate of the system".
//
// A job runs under fail-stop failures.  Fixed checkpoint intervals (too
// short: overhead; too long: lost work) are compared against the autonomic
// manager's Young-formula adaptation.  Metric: useful work completed in a
// fixed horizon (work lost to rollbacks and work burned on checkpointing
// both reduce it).
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "core/autonomic.hpp"
#include "core/systemlevel.hpp"
#include "util/rng.hpp"

using namespace ckpt;

namespace {

/// One machine, one job, failures at the given MTBF.  Returns useful
/// iterations retained at the end (progress as of the last restorable
/// state, or live progress if the job is alive).
std::uint64_t run(SimTime mtbf, SimTime fixed_interval, bool autonomic,
                  std::uint64_t seed) {
  sim::SimKernel kernel(1, sim::CostModel{}, seed);
  storage::RemoteBackend backend{kernel.costs()};
  core::KernelSignalEngine engine("sig", &backend, core::EngineOptions{}, kernel,
                                  sim::kSigCkpt, nullptr);

  sim::WriterConfig config;
  config.array_bytes = 1024 * 1024;  // checkpoints are not free
  sim::Pid pid = kernel.spawn(sim::SweepWriterGuest::kTypeName, config.encode(),
                              sim::spawn_options_for_array(config.array_bytes));

  core::AutonomicPolicy policy;
  policy.initial_interval = fixed_interval;
  policy.adapt_interval = autonomic;
  policy.initial_mtbf = 10 * kSecond;  // prior; adaptation must correct it
  policy.min_interval = 20 * kMillisecond;
  core::AutonomicManager manager(kernel, engine, policy);
  manager.manage(pid);
  manager.start();

  // Failure process: kill + restart from the newest restorable checkpoint
  // (falling back through earlier incarnations), or from scratch if no
  // image exists yet — what an operator would do.
  util::Rng rng(seed * 77 + 1);
  std::vector<sim::Pid> incarnations{pid};
  SimTime next_failure = static_cast<SimTime>(rng.next_exponential(
      static_cast<double>(mtbf)));
  const SimTime horizon = 30 * kSecond;
  while (kernel.now() < horizon) {
    const SimTime until = std::min(horizon, next_failure);
    kernel.run_until(until);
    if (kernel.now() >= horizon) break;
    // Fail-stop: the process dies losing all work since the last image.
    if (sim::Process* proc = kernel.find_process(pid); proc != nullptr && proc->alive()) {
      kernel.terminate(*proc, 137);
      kernel.reap(pid);
    }
    manager.observe_failure();
    manager.unmanage(pid);
    sim::Pid revived = sim::kNoPid;
    for (auto it = incarnations.rbegin(); it != incarnations.rend(); ++it) {
      const auto restored = engine.restart(kernel, *it);
      if (restored.ok) {
        revived = restored.pid;
        break;
      }
    }
    if (revived == sim::kNoPid) {
      // No checkpoint yet: restart the job from the beginning.
      revived = kernel.spawn(sim::SweepWriterGuest::kTypeName, config.encode(),
                             sim::spawn_options_for_array(config.array_bytes));
    }
    pid = revived;
    incarnations.push_back(pid);
    manager.manage(pid);
    next_failure =
        kernel.now() + static_cast<SimTime>(rng.next_exponential(static_cast<double>(mtbf)));
  }
  manager.stop();
  const sim::Process* proc = kernel.find_process(pid);
  if (proc == nullptr || !proc->alive()) return 0;
  // Useful work = guest iterations recorded in memory (survives restarts).
  const auto data = proc->aspace->page_data(sim::page_of(sim::kDataBase));
  std::uint64_t iterations = 0;
  std::memcpy(&iterations, data.data(), sizeof(iterations));
  return iterations;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C9 -- checkpoint-interval policy under failures",
                      "\"adjustment of the checkpoint interval to the failure rate of "
                      "the system\" (section 1); Young's t = sqrt(2 C MTBF)");

  const SimTime mtbf = 2 * kSecond;
  util::TextTable table({"policy", "interval", "useful iterations (avg of 3 seeds)"});
  auto average = [&](SimTime fixed, bool autonomic) {
    std::uint64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) total += run(mtbf, fixed, autonomic, seed);
    return total / 3;
  };

  const std::uint64_t too_short = average(25 * kMillisecond, false);
  const std::uint64_t moderate = average(400 * kMillisecond, false);
  const std::uint64_t too_long = average(8 * kSecond, false);
  const std::uint64_t adaptive = average(400 * kMillisecond, true);
  table.add_row({"fixed, too frequent", "25 ms", std::to_string(too_short)});
  table.add_row({"fixed, moderate", "400 ms", std::to_string(moderate)});
  table.add_row({"fixed, too rare", "8 s", std::to_string(too_long)});
  table.add_row({"autonomic (Young adaptation)", "self-tuned", std::to_string(adaptive)});
  bench::print_table(table);

  bench::print_verdict(adaptive >= too_long && adaptive >= too_short,
                       "the self-tuning interval matches or beats mis-tuned fixed "
                       "intervals at both extremes");
  return 0;
}
