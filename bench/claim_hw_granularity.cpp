// C10 (§4.2) — Hardware support traces modifications at cache-line
// granularity, "much finer ... than is done at the operating system level";
// SafetyNet needs more dedicated hardware than ReVive.
#include <cstdio>

#include "bench_common.hpp"
#include "hw/cacheline.hpp"

using namespace ckpt;

namespace {

struct Sample {
  std::uint64_t line_bytes;
  std::uint64_t page_bytes;
  std::uint64_t app_faults;
};

Sample measure(double working_set) {
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = 512 * 1024;
  config.working_set_fraction = working_set;
  config.writes_per_step = 16;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  sim::Process& proc = kernel.process(pid);
  proc.aspace->clear_dirty_bits();
  const auto faults_before = proc.stats.page_faults;

  hw::ReviveModel revive;
  revive.attach(proc);
  kernel.run_until(kernel.now() + 30 * kMillisecond);
  Sample sample{};
  sample.line_bytes = revive.dirty().dirty_bytes();
  sample.page_bytes = proc.aspace->dirty_page_count() * sim::kPageSize;
  sample.app_faults = proc.stats.page_faults - faults_before;
  revive.detach(proc);
  return sample;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C10 -- hardware cache-line tracking vs OS page tracking",
                      "\"modifications of the address space ... traced at the "
                      "granularity of cache lines\" (section 4.2)");

  util::TextTable table({"working set", "cache-line delta", "page delta",
                         "page/line ratio", "app faults from tracking"});
  bool holds = true;
  for (double ws : {0.01, 0.05, 0.25}) {
    const Sample s = measure(ws);
    holds = holds && s.line_bytes < s.page_bytes && s.app_faults == 0;
    table.add_row({util::format_double(ws * 100, 0) + "%",
                   util::format_bytes(s.line_bytes), util::format_bytes(s.page_bytes),
                   util::format_double(static_cast<double>(s.page_bytes) /
                                       static_cast<double>(std::max<std::uint64_t>(
                                           s.line_bytes, 1))),
                   std::to_string(s.app_faults)});
  }
  bench::print_table(table);

  // Hardware budget comparison (the ReVive vs SafetyNet point).
  hw::SafetyNetModel safetynet;
  std::printf("dedicated hardware: ReVive %s, SafetyNet %s (checkpoint-log buffers)\n\n",
              util::format_bytes(hw::ReviveModel::dedicated_hardware_bytes()).c_str(),
              util::format_bytes(safetynet.dedicated_hardware_bytes()).c_str());

  bench::print_verdict(holds && safetynet.dedicated_hardware_bytes() >
                                    hw::ReviveModel::dedicated_hardware_bytes(),
                       "cache-line deltas are several times smaller than page deltas, "
                       "cost the CPU nothing, and SafetyNet budgets more silicon");
  return 0;
}
