// E1 — Figure 1: the classification of checkpoint/restart implementations.
//
// The tree is generated from the registered implementations, so it reflects
// what the code actually provides rather than a hand-drawn picture.
#include <cstdio>

#include "bench_common.hpp"
#include "core/taxonomy.hpp"
#include "mechanisms/catalog.hpp"

int main() {
  using namespace ckpt;
  sim::register_standard_guests();
  bench::print_header(
      "Figure 1 -- Classification of the checkpoint/restart implementations",
      "Context -> agent -> technique tree, derived from the implementation registry.");

  mechanisms::register_taxonomy_entries();
  std::fputs(core::TaxonomyRegistry::instance().render_tree().c_str(), stdout);
  std::printf("\n%zu implementations registered across the taxonomy.\n",
              core::TaxonomyRegistry::instance().entries().size());
  return 0;
}
