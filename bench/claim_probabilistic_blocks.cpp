// C4 (§3, [23], [1]) — Probabilistic checkpointing tracks changes at block
// granularity finer than a page; block size trades checkpoint volume
// against hashing cost and signature memory, and adaptive block sizing
// finds the compromise automatically.
#include <cstdio>

#include "bench_common.hpp"
#include "core/incremental.hpp"

using namespace ckpt;

namespace {

struct Sample {
  std::uint64_t delta_bytes = 0;
  std::uint64_t signature_bytes = 0;
  SimTime tracking_time = 0;
};

Sample measure_block(std::uint32_t block_bytes) {
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = 512 * 1024;
  config.working_set_fraction = 0.08;
  config.writes_per_step = 16;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  sim::Process& proc = kernel.process(pid);

  core::ProbabilisticTracker tracker(block_bytes, 64);
  const SimTime cpu_before = proc.stats.cpu_time;
  tracker.begin_interval(kernel, proc);
  kernel.run_until(kernel.now() + 20 * kMillisecond);
  const auto dirty = tracker.collect(kernel, proc);

  Sample sample;
  for (const auto& range : dirty) sample.delta_bytes += range.length;
  sample.signature_bytes = tracker.signature_bytes();
  sample.tracking_time = proc.stats.cpu_time - cpu_before;
  return sample;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C4 -- probabilistic (block-hash) checkpointing granularity sweep",
                      "\"changes ... kept track at the granularity of a memory block "
                      "whose size can be much lower than the size of a entire page\" "
                      "[23]; block-size compromise per [1]");

  util::TextTable table(
      {"block size", "delta volume", "signature memory", "hash+track time"});
  std::uint64_t finest_delta = 0, page_delta = 0;
  for (std::uint32_t block : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const Sample s = measure_block(block);
    if (block == 128) finest_delta = s.delta_bytes;
    if (block == 4096) page_delta = s.delta_bytes;
    table.add_row({util::format_bytes(block), util::format_bytes(s.delta_bytes),
                   util::format_bytes(s.signature_bytes),
                   util::format_time_ns(s.tracking_time)});
  }
  bench::print_table(table);

  // Adaptive block sizing [1]: let regions pick their own size.
  {
    sim::SimKernel kernel;
    sim::WriterConfig config;
    config.array_bytes = 512 * 1024;
    config.working_set_fraction = 0.08;
    const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                      sim::spawn_options_for_array(config.array_bytes));
    kernel.run_until(kernel.now() + 5 * kMillisecond);
    sim::Process& proc = kernel.process(pid);
    core::AdaptiveBlockTracker adaptive(1024, 128, 4096);
    std::printf("adaptive block sizing [1], per checkpoint round:\n");
    for (int round = 0; round < 5; ++round) {
      adaptive.begin_interval(kernel, proc);
      kernel.run_until(kernel.now() + 20 * kMillisecond);
      const auto dirty = adaptive.collect(kernel, proc);
      std::uint64_t bytes = 0;
      for (const auto& range : dirty) bytes += range.length;
      const sim::Vma* heap = proc.aspace->find_vma(proc.heap_base);
      std::printf("  round %d: heap block size %s, delta %s\n", round,
                  util::format_bytes(adaptive.block_size_for(heap->first_page)).c_str(),
                  util::format_bytes(bytes).c_str());
    }
    std::printf("\n");
  }

  bench::print_verdict(finest_delta < page_delta,
                       "finer blocks produce smaller deltas at higher signature and "
                       "hashing cost; adaptive sizing converges per region");
  return 0;
}
