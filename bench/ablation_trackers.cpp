// Ablation — dirty-tracking technique for the "direction forward" engine.
//
// DESIGN.md's key design choice: which dirty tracker should a system-level
// incremental checkpointer use?  This ablation holds the engine, workload
// and checkpoint schedule fixed and swaps the tracker:
//
//   * kernel-wp       — write-protect + kernel fault handler (the survey's
//                       §4 technique; per-first-touch kernel fault)
//   * user-wp         — mprotect + SIGSEGV to user space (§3; per-touch
//                       signal + re-mprotect syscall)
//   * pte-scan        — MMU dirty-bit scan (no per-write cost, scan cost at
//                       checkpoint time)
//   * probabilistic   — block hashes (no write tracking at all, hash sweep
//                       at checkpoint time, finer-grain deltas)
//
// Metrics: application slowdown during the interval, checkpoint volume and
// capture-time cost.
#include <cstdio>

#include "bench_common.hpp"
#include "core/incremental.hpp"
#include "core/systemlevel.hpp"

using namespace ckpt;

namespace {

struct Sample {
  SimTime app_overhead = 0;   ///< extra app cpu time vs untracked baseline
  std::uint64_t delta_bytes = 0;
  SimTime collect_time = 0;
};

SimTime run_workload(sim::SimKernel& kernel, sim::Pid pid, std::uint64_t steps) {
  sim::Process& proc = kernel.process(pid);
  const SimTime before = proc.stats.cpu_time;
  kernel.run_while(
      [&] { return proc.alive() && proc.stats.guest_iterations < steps; },
      kernel.now() + 60 * kSecond);
  return proc.stats.cpu_time - before;
}

Sample measure(const std::string& tracker_name) {
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = 512 * 1024;
  config.working_set_fraction = 0.1;
  config.writes_per_step = 64;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  sim::Process& proc = kernel.process(pid);

  std::unique_ptr<core::DirtyTracker> tracker;
  if (tracker_name == "kernel-wp") tracker = std::make_unique<core::KernelWpTracker>();
  if (tracker_name == "user-wp") tracker = std::make_unique<core::UserWpTracker>();
  if (tracker_name == "pte-scan") tracker = std::make_unique<core::PteScanTracker>();
  if (tracker_name == "probabilistic") {
    tracker = std::make_unique<core::ProbabilisticTracker>(512, 64);
  }

  // Baseline: the same number of steps untracked.
  const std::uint64_t steps = proc.stats.guest_iterations + 40;
  sim::SimKernel baseline_kernel;
  const sim::Pid baseline_pid = baseline_kernel.spawn(
      sim::SparseWriterGuest::kTypeName, config.encode(),
      sim::spawn_options_for_array(config.array_bytes));
  baseline_kernel.run_until(baseline_kernel.now() + 5 * kMillisecond);
  const SimTime baseline_cost = run_workload(baseline_kernel, baseline_pid, steps);

  Sample sample;
  tracker->begin_interval(kernel, proc);
  const SimTime tracked_cost = run_workload(kernel, pid, steps);
  sample.app_overhead = tracked_cost > baseline_cost ? tracked_cost - baseline_cost : 0;

  const SimTime collect_before = proc.stats.cpu_time;
  const SimTime clock_before = kernel.now();
  const auto ranges = tracker->collect(kernel, proc);
  sample.collect_time =
      (proc.stats.cpu_time - collect_before) + (kernel.now() - clock_before);
  for (const auto& range : ranges) sample.delta_bytes += range.length;
  tracker->detach(proc);
  return sample;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("Ablation -- dirty-tracking technique for incremental checkpointing",
                      "design-choice sweep: per-write cost vs checkpoint-time cost vs "
                      "delta volume (DESIGN.md section 5)");

  util::TextTable table(
      {"tracker", "app overhead / interval", "delta volume", "collect cost"});
  Sample kernel_wp, user_wp;
  for (const char* name : {"kernel-wp", "user-wp", "pte-scan", "probabilistic"}) {
    const Sample s = measure(name);
    if (std::string(name) == "kernel-wp") kernel_wp = s;
    if (std::string(name) == "user-wp") user_wp = s;
    table.add_row({name, util::format_time_ns(s.app_overhead),
                   util::format_bytes(s.delta_bytes),
                   util::format_time_ns(s.collect_time)});
  }
  bench::print_table(table);
  bench::print_verdict(
      user_wp.app_overhead > kernel_wp.app_overhead,
      "the user-level flavour taxes the application hardest per interval; "
      "pte-scan shifts all cost to checkpoint time; probabilistic trades "
      "hash sweeps for finer deltas -- kernel-wp is the balanced default");
  return 0;
}
