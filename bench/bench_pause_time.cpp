// P2 (§4.1) — guest-visible pause of a checkpoint commit: stop-the-world
// pays capture + encode + replica fan-out inside the pause window, while the
// fork-snapshot streaming path pays only the fork's page-table walk and
// overlaps everything else with guest execution.
//
// Sweeps image size × dirty rate, reporting the guest-visible pause and the
// end-to-end commit latency for both strategies, then checks that the
// streamed commit is byte-identical on 1 vs 8 pool workers.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/systemlevel.hpp"
#include "storage/replicated.hpp"
#include "util/threadpool.hpp"

using namespace ckpt;

namespace {

/// One self-contained world: kernel, two replicas, a flat ReplicatedStore and
/// a by-pid SyscallEngine in the requested consistency mode.
struct World {
  sim::SimKernel kernel;
  storage::LocalDiskBackend local;
  storage::RemoteBackend remote;
  std::optional<util::ThreadPool> pool;
  std::optional<storage::ReplicatedStore> store;
  std::optional<core::SyscallEngine> engine;
  sim::Pid pid = sim::kNoPid;

  World(core::ConsistencyMode mode, bool streaming, std::uint32_t workers = 0)
      : kernel(2, sim::CostModel{}, /*seed=*/0x57),
        local(kernel.costs()),
        remote(kernel.costs()) {
    storage::ReplicatedOptions repl_options;
    if (workers > 0) {
      pool.emplace(workers);
      repl_options.pool = &*pool;
    }
    store.emplace(std::vector<storage::BlobStoreBackend*>{&local, &remote},
                  repl_options);
    core::EngineOptions engine_options;
    engine_options.consistency = mode;
    engine_options.streaming = streaming;
    // Incremental with a pte-scan tracker: the first commit is the full
    // image (pause scales with image size), the second a delta (pause
    // scales with the dirty rate) — both swept below.
    engine_options.incremental = true;
    engine_options.tracker_factory = [] {
      return std::make_unique<core::PteScanTracker>();
    };
    engine.emplace("pause_bench", &*store, engine_options, kernel,
                   core::SyscallEngine::TargetMode::kByPid, nullptr);
  }

  void launch_and_run(std::uint64_t array_bytes, std::uint64_t writes_per_step) {
    sim::WriterConfig config;
    config.array_bytes = array_bytes;
    config.writes_per_step = writes_per_step;
    config.seed = 3;
    pid = kernel.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                       sim::spawn_options_for_array(array_bytes));
    engine->attach(kernel, pid);  // arms the dirty tracker for delta commits
    kernel.run_while(
        [&] { return kernel.process(pid).stats.guest_iterations < 30; },
        kernel.now() + 10 * kSecond);
  }
};

struct Sample {
  SimTime stop_pause = 0;
  SimTime stream_pause = 0;
  SimTime stop_total = 0;
  SimTime stream_total = 0;
  double reduction = 0;
};

struct Point {
  std::uint64_t array_bytes = 0;
  std::uint64_t writes_per_step = 0;
  Sample full;   ///< first commit: the whole image
  Sample delta;  ///< second commit: only pages dirtied since
};

Point run_point(std::uint64_t array_bytes, std::uint64_t writes_per_step) {
  Point point;
  point.array_bytes = array_bytes;
  point.writes_per_step = writes_per_step;

  // Two commits per world: the full image, then — after another run of
  // guest steps — the incremental delta whose size tracks the dirty rate.
  const auto commit_twice = [&](World& world, Sample& full, Sample& delta,
                                bool stream) {
    world.launch_and_run(array_bytes, writes_per_step);
    const core::CheckpointResult first =
        world.engine->request_checkpoint(world.kernel, world.pid);
    if (!first.ok) return false;
    (stream ? full.stream_pause : full.stop_pause) = first.pause_ns;
    (stream ? full.stream_total : full.stop_total) = first.total_latency();
    const std::uint64_t more = world.kernel.process(world.pid).stats.guest_iterations + 20;
    world.kernel.run_while(
        [&] { return world.kernel.process(world.pid).stats.guest_iterations < more; },
        world.kernel.now() + 10 * kSecond);
    const core::CheckpointResult second =
        world.engine->request_checkpoint(world.kernel, world.pid);
    if (!second.ok) return false;
    (stream ? delta.stream_pause : delta.stop_pause) = second.pause_ns;
    (stream ? delta.stream_total : delta.stop_total) = second.total_latency();
    return true;
  };

  World stop(core::ConsistencyMode::kStopTarget, /*streaming=*/false);
  World stream(core::ConsistencyMode::kForkAndCopy, /*streaming=*/true);
  if (!commit_twice(stop, point.full, point.delta, false)) return point;
  if (!commit_twice(stream, point.full, point.delta, true)) return point;
  for (Sample* s : {&point.full, &point.delta}) {
    if (s->stream_pause > 0) {
      s->reduction =
          static_cast<double>(s->stop_pause) / static_cast<double>(s->stream_pause);
    }
  }
  return point;
}

/// Streamed commit on one worker vs eight: image id, replica bytes, pause and
/// sim-time must all be identical (chunking is fixed by stream_chunk_pages,
/// never by pool width).
bool identical_1v8(std::uint64_t array_bytes, std::uint64_t writes_per_step) {
  World one(core::ConsistencyMode::kForkAndCopy, /*streaming=*/true, 1);
  World eight(core::ConsistencyMode::kForkAndCopy, /*streaming=*/true, 8);
  one.launch_and_run(array_bytes, writes_per_step);
  eight.launch_and_run(array_bytes, writes_per_step);
  const core::CheckpointResult a = one.engine->request_checkpoint(one.kernel, one.pid);
  const core::CheckpointResult b =
      eight.engine->request_checkpoint(eight.kernel, eight.pid);
  if (!a.ok || !b.ok) return false;
  if (a.image_id != b.image_id || a.pause_ns != b.pause_ns ||
      a.total_latency() != b.total_latency() ||
      one.kernel.now() != eight.kernel.now()) {
    return false;
  }
  const auto local_a = one.local.read_blob(a.image_id, nullptr);
  const auto local_b = eight.local.read_blob(b.image_id, nullptr);
  const auto remote_a = one.remote.read_blob(a.image_id, nullptr);
  const auto remote_b = eight.remote.read_blob(b.image_id, nullptr);
  return local_a.has_value() && local_b.has_value() && *local_a == *local_b &&
         remote_a.has_value() && remote_b.has_value() && *remote_a == *remote_b;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_pause.json";
  sim::register_standard_guests();
  bench::print_header(
      "P2 -- guest-visible pause: stop-the-world vs streaming fork-snapshot",
      "\"An alternative approach consists in forking the application and "
      "leave it running\" (section 4.1) -- the pause shrinks to the fork's "
      "page-table walk while capture/encode/fan-out overlap execution");

  const std::vector<std::uint64_t> sizes = {64 * 1024, 512 * 1024,
                                            4 * 1024 * 1024};
  const std::vector<std::uint64_t> dirty_rates = {2, 32};

  std::vector<Point> points;
  util::TextTable table({"image", "writes/step", "commit", "stop pause",
                         "stream pause", "reduction", "stop commit",
                         "stream commit"});
  const auto add_sample_row = [&table](const Point& p, const char* kind,
                                       const Sample& s) {
    char reduction[32];
    std::snprintf(reduction, sizeof reduction, "%.1fx", s.reduction);
    table.add_row({util::format_bytes(p.array_bytes),
                   std::to_string(p.writes_per_step), kind,
                   util::format_time_ns(s.stop_pause),
                   util::format_time_ns(s.stream_pause), reduction,
                   util::format_time_ns(s.stop_total),
                   util::format_time_ns(s.stream_total)});
  };
  for (const std::uint64_t bytes : sizes) {
    for (const std::uint64_t writes : dirty_rates) {
      const Point p = run_point(bytes, writes);
      points.push_back(p);
      add_sample_row(p, "full", p.full);
      add_sample_row(p, "delta", p.delta);
    }
  }
  bench::print_table(table);

  // The gated figure: pause reduction at the largest swept image (worst case
  // for stop-the-world, best case for the claim), min over dirty rates and
  // over full-vs-delta commits.
  double reduction_large = 0;
  for (const Point& p : points) {
    if (p.array_bytes != sizes.back()) continue;
    for (const Sample* s : {&p.full, &p.delta}) {
      reduction_large = reduction_large == 0
                            ? s->reduction
                            : std::min(reduction_large, s->reduction);
    }
  }
  const bool deterministic = identical_1v8(sizes.back(), dirty_rates.back());
  std::printf(
      "pause reduction (largest image, min over dirty rates and commits): "
      "%.1fx\n",
      reduction_large);
  std::printf("1-vs-8-worker streamed commit identical: %s\n",
              deterministic ? "yes" : "NO");
  const bool holds = deterministic && reduction_large >= 10.0;
  bench::print_verdict(
      holds,
      "fork-snapshot streaming cuts the guest-visible pause by >= 10x at the "
      "largest image while staying byte-identical for any worker count");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_pause_time\",\n");
  std::fprintf(json, "  \"identical_1v8\": %s,\n", deterministic ? "true" : "false");
  std::fprintf(json, "  \"pause_reduction_large\": %.4f,\n", reduction_large);
  std::fprintf(json, "  \"target_reduction\": 10.0,\n");
  std::fprintf(json, "  \"holds\": %s,\n", holds ? "true" : "false");
  std::fprintf(json, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const Sample* samples[] = {&p.full, &p.delta};
    const char* kinds[] = {"full", "delta"};
    for (std::size_t k = 0; k < 2; ++k) {
      const Sample& s = *samples[k];
      std::fprintf(json,
                   "    {\"image_bytes\": %llu, \"writes_per_step\": %llu, "
                   "\"commit\": \"%s\", "
                   "\"stop_pause_ns\": %llu, \"stream_pause_ns\": %llu, "
                   "\"pause_reduction\": %.4f, \"stop_commit_ns\": %llu, "
                   "\"stream_commit_ns\": %llu}%s\n",
                   static_cast<unsigned long long>(p.array_bytes),
                   static_cast<unsigned long long>(p.writes_per_step), kinds[k],
                   static_cast<unsigned long long>(s.stop_pause),
                   static_cast<unsigned long long>(s.stream_pause), s.reduction,
                   static_cast<unsigned long long>(s.stop_total),
                   static_cast<unsigned long long>(s.stream_total),
                   i + 1 < points.size() || k == 0 ? "," : "");
    }
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return holds ? 0 : 1;
}
