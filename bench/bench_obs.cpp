// Observability overhead: the commit pipeline with a live Observer (trace +
// metrics) vs the identical pipeline with observability disabled (null
// Observer*, the default), plus a third arm that layers the full fleet
// observability stack on top — flight-recorder black-box brackets persisted
// through a log-structured journal around every commit, per-node metrics,
// and a periodic telemetry rollup.  The instrumentation discipline — one
// pointer test per hook when disabled, ledgered replay on the caller when
// enabled — is only honest if the enabled paths stay within noise, so the
// CI gate requires < 2% throughput overhead for BOTH arms on the
// large-image 3-way 4-worker commit loop.
//
// Host wall-clock only.  Emits BENCH_obs.json (path = argv[1], default
// ./BENCH_obs.json) for the CI archive + gate.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/flightrec.hpp"
#include "obs/observer.hpp"
#include "obs/rollup.hpp"
#include "storage/backend.hpp"
#include "storage/image.hpp"
#include "storage/journal.hpp"
#include "storage/replicated.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

using namespace ckpt;

namespace {

storage::CheckpointImage make_image(std::size_t segments, std::uint64_t pages_per_segment,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = 7;
  image.process_name = "bench";
  image.taken_at = seed;
  image.threads.push_back(storage::ThreadImage{1, {}});
  for (std::size_t s = 0; s < segments; ++s) {
    storage::MemorySegmentImage seg;
    seg.vma = sim::Vma{sim::page_of(0x100000 + (s << 20)), pages_per_segment,
                       sim::kProtRW, sim::VmaKind::kData, "seg" + std::to_string(s)};
    for (std::uint64_t p = 0; p < pages_per_segment; ++p) {
      storage::PageImage page;
      page.page = seg.vma.first_page + p;
      page.data.resize(sim::kPageSize);
      for (std::size_t i = 0; i < page.data.size(); i += 8) {
        const std::uint64_t word = rng.next_u64();
        for (std::size_t b = 0; b < 8 && i + b < page.data.size(); ++b) {
          page.data[i + b] = static_cast<std::byte>(word >> (8 * b));
        }
      }
      seg.pages.push_back(std::move(page));
    }
    image.segments.push_back(std::move(seg));
  }
  return image;
}

struct ReplicaSet {
  sim::CostModel costs{};
  storage::LocalDiskBackend local{costs};
  std::vector<std::unique_ptr<storage::RemoteBackend>> remotes;
  std::vector<storage::BlobStoreBackend*> replicas;

  explicit ReplicaSet(std::uint32_t width) {
    replicas.push_back(&local);
    for (std::uint32_t i = 1; i < width; ++i) {
      remotes.push_back(std::make_unique<storage::RemoteBackend>(costs));
      replicas.push_back(remotes.back().get());
    }
  }
};

template <typename Fn>
double seconds_per_commit(int iters, Fn&& commit) {
  commit();  // warmup
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) commit();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() / iters;
}

double measure(const storage::CheckpointImage& image, util::ThreadPool& pool,
               obs::Observer* observer, int iters) {
  ReplicaSet set(3);
  storage::ReplicatedOptions options;
  options.pool = &pool;
  options.observer = observer;
  storage::ReplicatedStore store(set.replicas, options);
  return seconds_per_commit(iters, [&] {
    const storage::StoreReceipt receipt = store.store_verbose(image, nullptr);
    if (!receipt.ok()) {
      std::fprintf(stderr, "commit failed?!\n");
      std::exit(1);
    }
    store.erase(receipt.id);
    // A long-lived deployment drains the trace between checkpoints; clear
    // per commit so memory growth never masquerades as tracing cost.
    if (observer != nullptr) observer->reset();
  });
}

// The fleet-soak per-commit observability recipe: bracket the commit with
// flight-recorder spans, persist the black box through the journal before
// and after (the crash-surviving protocol), fold per-node metrics, and
// refresh the telemetry rollup every 8th commit.
double measure_flight(const storage::CheckpointImage& image, util::ThreadPool& pool,
                      obs::Observer* observer, int iters) {
  ReplicaSet set(3);
  storage::ReplicatedOptions options;
  options.pool = &pool;
  options.observer = observer;
  storage::ReplicatedStore store(set.replicas, options);

  sim::CostModel costs;
  storage::LocalDiskBackend journal_home(costs);
  storage::JournalOptions joptions;
  joptions.observer = observer;
  storage::LogStructuredBackend journal(&journal_home, joptions);
  const auto charge = [](SimTime) {};

  obs::FlightRecorder flight;
  obs::MetricsRegistry node_metrics;
  obs::FleetTelemetry telemetry;
  std::uint64_t seq = 0;
  std::string rollup;
  return seconds_per_commit(iters, [&] {
    ++seq;
    const SimTime now = static_cast<SimTime>(seq) * 1000;
    flight.span_begin(now, "commit", seq);
    if (!journal.append_flight_record(0, flight.serialize(), charge)) {
      std::fprintf(stderr, "flight append failed?!\n");
      std::exit(1);
    }
    const storage::StoreReceipt receipt = store.store_verbose(image, nullptr);
    if (!receipt.ok()) {
      std::fprintf(stderr, "commit failed?!\n");
      std::exit(1);
    }
    flight.span_end(now + 500, "commit", seq);
    flight.counter(now + 500, "commits", seq);
    node_metrics.add("node.commits");
    node_metrics.observe("node.commit_latency_ns", 500,
                         obs::MetricsRegistry::latency_bounds());
    if (!journal.append_flight_record(0, flight.serialize(), charge)) {
      std::fprintf(stderr, "flight append failed?!\n");
      std::exit(1);
    }
    if (seq % 8 == 0) {
      telemetry.ingest(0, node_metrics);
      rollup = telemetry.rollup_json("node.commit_latency_ns");
    }
    store.erase(receipt.id);
    if (observer != nullptr) observer->reset();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  bench::print_header(
      "bench_obs -- lifecycle tracing + metrics overhead on the commit pipeline",
      "a null Observer* must cost one pointer test; an attached Observer — and "
      "the full flight-recorder + journal + rollup stack — must each stay < 2% "
      "on large 3-way 4-worker commits");

  const storage::CheckpointImage image = make_image(32, 64, 0xBE7C);  // ~8 MiB
  util::ThreadPool pool(4);
  constexpr int kIters = 8;

  obs::Observer observer;
  observer.set_clock([] { return SimTime{0}; });

  // Interleave A/B/C/A to split turbo/cache drift across the arms.
  const double off_a = measure(image, pool, nullptr, kIters);
  const double on = measure(image, pool, &observer, kIters);
  const double flight = measure_flight(image, pool, &observer, kIters);
  const double off_b = measure(image, pool, nullptr, kIters);
  const double off = std::min(off_a, off_b);
  const double overhead_pct = (on / off - 1.0) * 100.0;
  const double flight_overhead_pct = (flight / off - 1.0) * 100.0;

  // Count the events one observed commit records.
  {
    ReplicaSet set(3);
    storage::ReplicatedOptions options;
    options.pool = &pool;
    options.observer = &observer;
    storage::ReplicatedStore store(set.replicas, options);
    observer.reset();
    const storage::StoreReceipt receipt = store.store_verbose(image, nullptr);
    if (!receipt.ok()) return 1;
    store.erase(receipt.id);
  }
  const std::size_t events_per_commit = observer.trace().events().size();

  util::TextTable table({"observer", "s/commit", "commits/s"});
  table.add_row({"disabled", util::format_double(off, 6),
                 util::format_double(1.0 / off, 2)});
  table.add_row({"enabled", util::format_double(on, 6),
                 util::format_double(1.0 / on, 2)});
  table.add_row({"enabled+flight", util::format_double(flight, 6),
                 util::format_double(1.0 / flight, 2)});
  bench::print_table(table);
  std::printf("events per observed commit: %zu\n", events_per_commit);
  std::printf("enabled-tracing overhead: %.3f%%\n", overhead_pct);
  std::printf("flight+rollup overhead: %.3f%%\n", flight_overhead_pct);
  const bool holds = overhead_pct < 2.0 && flight_overhead_pct < 2.0;
  bench::print_verdict(holds,
                       "trace+metrics AND flight-recorder+rollups stay under 2% "
                       "commit overhead");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_obs\",\n");
  std::fprintf(json, "  \"secs_per_commit_disabled\": %.6f,\n", off);
  std::fprintf(json, "  \"secs_per_commit_enabled\": %.6f,\n", on);
  std::fprintf(json, "  \"secs_per_commit_flight\": %.6f,\n", flight);
  std::fprintf(json, "  \"events_per_commit\": %zu,\n", events_per_commit);
  std::fprintf(json, "  \"overhead_pct\": %.4f,\n", overhead_pct);
  std::fprintf(json, "  \"flight_overhead_pct\": %.4f,\n", flight_overhead_pct);
  std::fprintf(json, "  \"target_overhead_pct\": 2.0,\n");
  std::fprintf(json, "  \"holds\": %s\n}\n", holds ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
