// C11 (§4) — Centralized batch-manager checkpointing vs per-node autonomic
// management: "reduces the scalability and fault tolerance of autonomic
// computers because the management is centralized".
//
// Sweep the cluster size: the batch manager serializes RPC round trips
// through one head node, while per-node autonomic managers act in parallel.
// Second experiment: availability of checkpointing when the head fails.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/batch.hpp"
#include "core/autonomic.hpp"
#include "core/systemlevel.hpp"

using namespace ckpt;

namespace {

std::vector<std::unique_ptr<core::CheckpointEngine>> make_engines(
    cluster::Cluster& cluster) {
  std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
  for (int i = 0; i < cluster.size(); ++i) {
    engines.push_back(std::make_unique<core::KernelSignalEngine>(
        "sig", &cluster.remote_storage(), core::EngineOptions{},
        cluster.node(i).kernel(), sim::kSigCkpt, nullptr));
  }
  return engines;
}

/// Time for the batch manager to checkpoint one process on every node.
SimTime batch_sweep_time(int nodes) {
  cluster::Cluster cluster(nodes, cluster::NodeConfig{});
  auto engines = make_engines(cluster);
  std::vector<core::CheckpointEngine*> raw;
  for (auto& e : engines) raw.push_back(e.get());
  cluster::BatchManager manager(cluster, 0, raw);
  cluster::BatchManager::Job job;
  for (int i = 0; i < nodes; ++i) {
    job.procs.push_back({i, cluster.node(i).kernel().spawn(sim::CounterGuest::kTypeName)});
  }
  manager.submit(job);
  cluster.run_until(10 * kMillisecond);
  const auto result = manager.checkpoint_all();
  return result.duration;
}

/// Wall time for per-node autonomic managers to each checkpoint their local
/// process once (they act concurrently; the slowest node bounds the sweep).
SimTime autonomic_sweep_time(int nodes) {
  cluster::Cluster cluster(nodes, cluster::NodeConfig{});
  auto engines = make_engines(cluster);
  SimTime slowest = 0;
  for (int i = 0; i < nodes; ++i) {
    sim::SimKernel& kernel = cluster.node(i).kernel();
    const sim::Pid pid = kernel.spawn(sim::CounterGuest::kTypeName);
    kernel.run_until(10 * kMillisecond);
    const auto result = engines[static_cast<std::size_t>(i)]->request_checkpoint(kernel, pid);
    if (result.ok) slowest = std::max(slowest, result.total_latency());
  }
  return slowest;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C11 -- centralized batch manager vs per-node autonomic managers",
                      "centralization \"reduces the scalability and fault tolerance of "
                      "autonomic computers\" (section 4)");

  util::TextTable table({"nodes", "batch sweep (serialized)", "autonomic sweep (parallel)",
                         "batch/autonomic"});
  SimTime batch_small = 0, batch_large = 0, auto_small = 1, auto_large = 1;
  for (int nodes : {4, 16, 64}) {
    const SimTime batch = batch_sweep_time(nodes);
    const SimTime autonomic = autonomic_sweep_time(nodes);
    if (nodes == 4) {
      batch_small = batch;
      auto_small = autonomic;
    }
    if (nodes == 64) {
      batch_large = batch;
      auto_large = autonomic;
    }
    table.add_row({std::to_string(nodes), util::format_time_ns(batch),
                   util::format_time_ns(autonomic),
                   util::format_double(static_cast<double>(batch) /
                                       static_cast<double>(std::max<SimTime>(autonomic, 1)))});
  }
  bench::print_table(table);

  // Fault tolerance of the management plane itself.
  {
    cluster::Cluster cluster(4, cluster::NodeConfig{});
    auto engines = make_engines(cluster);
    std::vector<core::CheckpointEngine*> raw;
    for (auto& e : engines) raw.push_back(e.get());
    cluster::BatchManager manager(cluster, 0, raw);
    cluster::BatchManager::Job job;
    job.procs.push_back({1, cluster.node(1).kernel().spawn(sim::CounterGuest::kTypeName)});
    manager.submit(job);
    cluster.run_until(10 * kMillisecond);
    cluster.fail_node(0);  // the head dies; node 1 is perfectly healthy
    const auto swept = manager.checkpoint_all();
    std::printf("after head-node failure: batch checkpoints=%llu (%s)\n",
                static_cast<unsigned long long>(swept.checkpointed),
                swept.error.empty() ? "ok" : swept.error.c_str());
    const auto direct = raw[1]->request_checkpoint(
        cluster.node(1).kernel(), cluster.node(1).kernel().live_pids().front());
    std::printf("per-node autonomic on the same cluster: checkpoint ok=%d\n\n",
                direct.ok ? 1 : 0);
  }

  const double growth_batch =
      static_cast<double>(batch_large) / static_cast<double>(std::max<SimTime>(batch_small, 1));
  const double growth_auto =
      static_cast<double>(auto_large) / static_cast<double>(std::max<SimTime>(auto_small, 1));
  bench::print_verdict(growth_batch > 4 * growth_auto,
                       "the centralized sweep grows ~linearly with cluster size while "
                       "the decentralized one stays flat; the head node is a single "
                       "point of failure for the whole management plane");
  return 0;
}
