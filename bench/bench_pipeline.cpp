// Commit-pipeline throughput: serial (pre-pipeline) commit path vs the
// parallel checkpoint commit pipeline (sharded serialize + slicing-by-8
// CRC64 + copy-free read-back verify), swept across worker count,
// replication width and image size.
//
// The "legacy" baseline reproduces the pre-PR commit loop faithfully:
// serial serialize, bytewise CRC64 over the blob, then per replica a
// put_raw followed by a full read_blob copy re-CRC'd bytewise.  The
// pipeline path is ReplicatedStore::store_verbose with a ThreadPool.
//
// Host wall-clock only — simulated-time charges are not involved (and the
// determinism check asserts the pipeline never changes observable state).
// Emits BENCH_pipeline.json (path = argv[1], default ./BENCH_pipeline.json)
// for the CI archive + regression gate.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "storage/backend.hpp"
#include "storage/image.hpp"
#include "storage/replicated.hpp"
#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

using namespace ckpt;

namespace {

struct ImageSpec {
  const char* name;
  std::size_t segments;
  std::uint64_t pages_per_segment;
};

constexpr ImageSpec kSmall{"small", 8, 16};   // 8 x 16 x 4 KiB = 512 KiB of pages
constexpr ImageSpec kLarge{"large", 32, 64};  // 32 x 64 x 4 KiB = 8 MiB of pages

storage::CheckpointImage make_image(const ImageSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = 7;
  image.process_name = "bench";
  image.taken_at = seed;
  image.threads.push_back(storage::ThreadImage{1, {}});
  for (std::size_t s = 0; s < spec.segments; ++s) {
    storage::MemorySegmentImage seg;
    seg.vma = sim::Vma{sim::page_of(0x100000 + (s << 20)), spec.pages_per_segment,
                       sim::kProtRW, sim::VmaKind::kData, "seg" + std::to_string(s)};
    for (std::uint64_t p = 0; p < spec.pages_per_segment; ++p) {
      storage::PageImage page;
      page.page = seg.vma.first_page + p;
      page.data.resize(sim::kPageSize);
      for (std::size_t i = 0; i < page.data.size(); i += 8) {
        const std::uint64_t word = rng.next_u64();
        for (std::size_t b = 0; b < 8 && i + b < page.data.size(); ++b) {
          page.data[i + b] = static_cast<std::byte>(word >> (8 * b));
        }
      }
      seg.pages.push_back(std::move(page));
    }
    image.segments.push_back(std::move(seg));
  }
  return image;
}

struct ReplicaSet {
  sim::CostModel costs{};
  storage::LocalDiskBackend local{costs};
  std::vector<std::unique_ptr<storage::RemoteBackend>> remotes;
  std::vector<storage::BlobStoreBackend*> replicas;

  explicit ReplicaSet(std::uint32_t width) {
    replicas.push_back(&local);
    for (std::uint32_t i = 1; i < width; ++i) {
      remotes.push_back(std::make_unique<storage::RemoteBackend>(costs));
      replicas.push_back(remotes.back().get());
    }
  }
};

/// The pre-pipeline commit loop: serial serialize, bytewise CRC, and a full
/// read-back copy per replica, re-CRC'd bytewise.
void legacy_commit(const storage::CheckpointImage& image,
                   std::vector<storage::BlobStoreBackend*>& replicas) {
  const std::vector<std::byte> blob = image.serialize();
  const std::uint64_t crc = util::crc64_bytewise(blob);
  std::vector<storage::ImageId> placed(replicas.size(), storage::kBadImageId);
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    const storage::ImageId id = replicas[r]->put_raw(blob, nullptr);
    const auto back = replicas[r]->read_blob(id, nullptr);
    if (!back.has_value() || util::crc64_bytewise(*back) != crc) {
      std::fprintf(stderr, "legacy verify failed?!\n");
      std::exit(1);
    }
    placed[r] = id;
  }
  for (std::size_t r = 0; r < replicas.size(); ++r) replicas[r]->erase(placed[r]);
}

template <typename Fn>
double seconds_per_commit(int iters, Fn&& commit) {
  commit();  // warmup (touches pages, fills buffer pools)
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) commit();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() / iters;
}

struct Result {
  std::string mode;  // "legacy" or "pipeline"
  unsigned workers = 0;
  std::uint32_t replicas = 0;
  std::string image;
  std::size_t blob_bytes = 0;
  double commits_per_sec = 0;
  double mb_per_sec = 0;  // serialized bytes landed across all replicas
};

Result measure_legacy(const ImageSpec& spec, std::uint32_t width, int iters) {
  const storage::CheckpointImage image = make_image(spec, 0xBE7C);
  ReplicaSet set(width);
  const std::size_t blob_bytes = image.serialized_size();
  const double secs =
      seconds_per_commit(iters, [&] { legacy_commit(image, set.replicas); });
  Result r{"legacy", 0, width, spec.name, blob_bytes, 1.0 / secs, 0};
  r.mb_per_sec = r.commits_per_sec * static_cast<double>(blob_bytes) * width / (1 << 20);
  return r;
}

Result measure_pipeline(const ImageSpec& spec, std::uint32_t width, unsigned workers,
                        util::ThreadPool& pool, int iters) {
  const storage::CheckpointImage image = make_image(spec, 0xBE7C);
  ReplicaSet set(width);
  storage::ReplicatedOptions options;
  options.pool = &pool;
  storage::ReplicatedStore store(set.replicas, options);
  const std::size_t blob_bytes = image.serialized_size();
  const double secs = seconds_per_commit(iters, [&] {
    const storage::StoreReceipt receipt = store.store_verbose(image, nullptr);
    if (!receipt.ok()) {
      std::fprintf(stderr, "pipeline commit failed?!\n");
      std::exit(1);
    }
    store.erase(receipt.id);
  });
  Result r{"pipeline", workers, width, spec.name, blob_bytes, 1.0 / secs, 0};
  r.mb_per_sec = r.commits_per_sec * static_cast<double>(blob_bytes) * width / (1 << 20);
  return r;
}

/// 1-worker vs 8-worker stores over the same images must leave bit-identical
/// replica contents and identical manifests.
bool identical_1v8() {
  util::ThreadPool one(1), eight(8);
  auto drive = [](util::ThreadPool& pool, ReplicaSet& set) {
    storage::ReplicatedOptions options;
    options.pool = &pool;
    storage::ReplicatedStore store(set.replicas, options);
    for (std::uint64_t i = 0; i < 3; ++i) {
      if (!store.store_verbose(make_image(kSmall, i), nullptr).ok()) return false;
    }
    return true;
  };
  ReplicaSet set_a(3), set_b(3);
  if (!drive(one, set_a) || !drive(eight, set_b)) return false;
  for (std::size_t r = 0; r < 3; ++r) {
    const auto ids_a = set_a.replicas[r]->list();
    const auto ids_b = set_b.replicas[r]->list();
    if (ids_a != ids_b) return false;
    for (std::size_t i = 0; i < ids_a.size(); ++i) {
      const auto blob_a = set_a.replicas[r]->read_blob(ids_a[i], nullptr);
      const auto blob_b = set_b.replicas[r]->read_blob(ids_b[i], nullptr);
      if (blob_a != blob_b) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  bench::print_header(
      "bench_pipeline -- parallel checkpoint commit pipeline throughput",
      "sharded serialize + slicing-by-8 CRC64 + copy-free verify vs the "
      "serial bytewise commit loop (section 4.1 concurrent-commit branch)");

  const bool deterministic = identical_1v8();
  std::printf("determinism: 1-worker and 8-worker stores bit-identical: %s\n\n",
              deterministic ? "yes" : "NO");

  util::ThreadPool pool1(1), pool2(2), pool4(4), pool8(8);
  const std::vector<std::pair<unsigned, util::ThreadPool*>> pools{
      {1, &pool1}, {2, &pool2}, {4, &pool4}, {8, &pool8}};

  std::vector<Result> results;
  util::TextTable table(
      {"image", "replicas", "mode", "workers", "commits/s", "MiB/s landed"});
  double legacy_large_3way = 0, pipeline_large_3way_4w = 0;
  for (const ImageSpec* spec : {&kSmall, &kLarge}) {
    const int iters = spec == &kSmall ? 10 : 3;
    for (std::uint32_t width : {1u, 2u, 3u}) {
      const Result legacy = measure_legacy(*spec, width, iters);
      results.push_back(legacy);
      table.add_row({legacy.image, std::to_string(width), "legacy", "-",
                     util::format_double(legacy.commits_per_sec, 2),
                     util::format_double(legacy.mb_per_sec, 1)});
      if (spec == &kLarge && width == 3) legacy_large_3way = legacy.commits_per_sec;
      for (const auto& [workers, pool] : pools) {
        const Result r = measure_pipeline(*spec, width, workers, *pool, iters);
        results.push_back(r);
        table.add_row({r.image, std::to_string(width), "pipeline",
                       std::to_string(workers),
                       util::format_double(r.commits_per_sec, 2),
                       util::format_double(r.mb_per_sec, 1)});
        if (spec == &kLarge && width == 3 && workers == 4) {
          pipeline_large_3way_4w = r.commits_per_sec;
        }
      }
    }
  }
  bench::print_table(table);

  const double speedup =
      legacy_large_3way > 0 ? pipeline_large_3way_4w / legacy_large_3way : 0;
  std::printf("speedup (large image, 3-way, 4 workers vs legacy serial): %.2fx\n",
              speedup);
  bench::print_verdict(
      deterministic && speedup >= 2.0,
      "the commit pipeline is >= 2x the serial path on large 3-way commits "
      "while leaving bit-identical replica state for any worker count");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_pipeline\",\n");
  std::fprintf(json, "  \"identical_1v8\": %s,\n", deterministic ? "true" : "false");
  std::fprintf(json, "  \"speedup_large_3way_4workers\": %.4f,\n", speedup);
  std::fprintf(json, "  \"target_speedup\": 2.0,\n");
  std::fprintf(json, "  \"holds\": %s,\n",
               deterministic && speedup >= 2.0 ? "true" : "false");
  std::fprintf(json, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"workers\": %u, \"replicas\": %u, "
                 "\"image\": \"%s\", \"blob_bytes\": %zu, "
                 "\"commits_per_sec\": %.4f, \"mb_per_sec\": %.4f}%s\n",
                 r.mode.c_str(), r.workers, r.replicas, r.image.c_str(), r.blob_bytes,
                 r.commits_per_sec, r.mb_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return deterministic ? 0 : 1;
}
