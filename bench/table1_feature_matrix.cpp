// E2 — Table 1: the feature matrix of the surveyed mechanisms.
//
// Every cell is *measured* by the capability prober (see
// mechanisms/probe.hpp): incremental behaviour from image sizes,
// transparency from checkpointing an unmodified guest, storage from backend
// locality, initiation from external-initiation support, module from the
// kernel's module registry.  The bench prints the probed matrix, diffs it
// against the published table, and appends the row for this repository's
// own "direction forward" engine (system-level + kernel thread +
// incremental + automatic), which fills the gap the survey identifies.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/autonomic.hpp"
#include "core/incremental.hpp"
#include "core/systemlevel.hpp"
#include "mechanisms/probe.hpp"

namespace {

using namespace ckpt;

/// Probe the paper's proposed design point the same way the surveyed
/// mechanisms are probed.
mechanisms::ProbedRow probe_direction_forward() {
  mechanisms::ProbedRow row;
  row.name = "PAL proposal (this repo)";
  sim::register_standard_guests();

  sim::SimKernel kernel;
  storage::RemoteBackend remote{kernel.costs()};
  sim::KernelModule& module = kernel.load_module("palckpt");
  core::EngineOptions options;
  options.incremental = true;
  options.tracker_factory = [] { return std::make_unique<core::KernelWpTracker>(); };
  core::KernelThreadEngine engine("palckpt", &remote, options, kernel,
                                  core::KernelThreadEngine::ThreadConfig{}, &module);
  core::AutonomicPolicy policy;
  policy.initial_interval = 20 * kMillisecond;
  core::AutonomicManager manager(kernel, engine, policy);

  row.module = kernel.loaded_modules().empty() ? "no" : "yes";
  row.initiation = "automatic";  // manager-driven, no human in the loop
  row.storage = "local,remote";

  sim::WriterConfig config;
  config.array_bytes = 256 * 1024;
  config.working_set_fraction = 0.05;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  // Transparency: nothing was linked into or wrapped around the app.
  manager.manage(pid);
  manager.start();
  kernel.run_until(kernel.now() + 100 * kMillisecond);
  manager.stop();

  const auto& history = engine.history();
  std::uint64_t full_bytes = 0, delta_bytes = 0;
  for (const auto& result : history) {
    if (!result.ok) continue;
    if (result.kind == storage::ImageKind::kFull && full_bytes == 0) {
      full_bytes = result.payload_bytes;
    } else if (result.kind == storage::ImageKind::kIncremental) {
      delta_bytes = result.payload_bytes;
    }
  }
  row.incremental =
      full_bytes > 0 && delta_bytes > 0 && delta_bytes * 2 < full_bytes ? "yes" : "no";
  row.transparency = history.empty() || !history.front().ok ? "no" : "yes";
  return row;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("Table 1 -- Main features of the surveyed mechanisms",
                      "Every cell probed from the running implementation; diffed "
                      "against the published table.");

  util::TextTable table({"Name", "Incremental", "Transparency", "Stable storage",
                         "Initiation", "Kernel module"});
  int mismatches = 0;
  for (const auto& entry : mechanisms::mechanism_catalog()) {
    const mechanisms::ProbedRow probed = mechanisms::probe_mechanism(entry);
    const mechanisms::PaperRow paper = mechanisms::paper_row_for(entry);
    auto cell = [&](const std::string& measured, const char* published) {
      if (measured == published) return measured;
      ++mismatches;
      return measured + " (paper: " + published + ")";
    };
    table.add_row({probed.name, cell(probed.incremental, paper.incremental),
                   cell(probed.transparency, paper.transparency),
                   cell(probed.storage, paper.storage),
                   cell(probed.initiation, paper.initiation),
                   cell(probed.module, paper.module)});
  }
  const mechanisms::ProbedRow forward = probe_direction_forward();
  table.add_row({forward.name, forward.incremental, forward.transparency, forward.storage,
                 forward.initiation, forward.module});
  bench::print_table(table);

  std::printf("Probed cells diverging from the published table: %d\n", mismatches);
  bench::print_verdict(mismatches == 0,
                       "all 60 probed Table 1 cells match the publication; the added "
                       "row shows the survey's proposed design point is realizable");
  return 0;
}
