// Append-commit vs two-phase publish: commit-initiation latency under
// concurrent-writer load.
//
// The survey's closing argument (§4) is that commit *initiation* limits
// checkpoint frequency: the replicated two-phase path pays stage + read-back
// verify + manifest publish per replica on the critical path of every
// commit.  The log-structured journal moves commit to a sequential append
// with one group-commit sync shared by all concurrent writers, and drains to
// the replicated store off the critical path.  This bench quantifies the gap
// on the simulated device model: 4 concurrent writers, identical image
// streams, mean critical-path sim-time per commit.  The CI gate requires the
// append path >= 1.5x faster at 4 writers (the measured headline is far
// higher), plus worker-count-invariant log/home contents.
//
// Deterministic (sim + seeded rng; no host timing).  Emits BENCH_journal.json
// (path = argv[1], default ./BENCH_journal.json) for the CI archive + gate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "storage/backend.hpp"
#include "storage/image.hpp"
#include "storage/journal.hpp"
#include "storage/replicated.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

using namespace ckpt;

namespace {

constexpr std::uint64_t kWriters = 4;   // concurrent engines sharing each group
constexpr std::uint64_t kRounds = 6;    // commit rounds measured
constexpr std::uint64_t kPages = 8;     // pages per image

std::vector<std::byte> random_page(util::Rng& rng) {
  std::vector<std::byte> data(sim::kPageSize);
  for (std::size_t i = 0; i < data.size(); i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (std::size_t b = 0; b < 8 && i + b < data.size(); ++b) {
      data[i + b] = static_cast<std::byte>(word >> (8 * b));
    }
  }
  return data;
}

storage::CheckpointImage make_image(util::Rng& rng, std::uint64_t writer,
                                    std::uint64_t round) {
  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = static_cast<sim::Pid>(10 + writer);
  image.process_name = "writer";
  image.sequence = round;
  image.taken_at = round * 1000 + writer;
  image.threads.push_back(storage::ThreadImage{1, {}});
  storage::MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(0x100000), kPages, sim::kProtRW,
                     sim::VmaKind::kData, "data"};
  for (std::uint64_t p = 0; p < kPages; ++p) {
    storage::PageImage page;
    page.page = seg.vma.first_page + p;
    page.data = random_page(rng);
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

struct Measured {
  SimTime commit_total = 0;      ///< critical-path time across all commits
  SimTime background_total = 0;  ///< migrator drain time (append mode only)
  std::uint64_t commits = 0;

  [[nodiscard]] double per_commit_ms() const {
    return static_cast<double>(commit_total) / static_cast<double>(commits) / 1e6;
  }
};

/// Baseline: every writer commits straight through the replicated two-phase
/// publish (stage + read-back verify + manifest) on its own critical path.
Measured measure_two_phase() {
  util::Rng rng(0x10C);
  sim::CostModel costs{};
  storage::LocalDiskBackend local{costs};
  storage::RemoteBackend remote{costs};
  storage::ReplicatedStore store({&local, &remote}, {});

  Measured result;
  const storage::ChargeFn charge = [&](SimTime t) { result.commit_total += t; };
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint64_t writer = 0; writer < kWriters; ++writer) {
      if (store.store(make_image(rng, writer, round), charge) == storage::kBadImageId) {
        std::exit(1);
      }
      ++result.commits;
    }
  }
  return result;
}

/// Append-commit: the same writers share a group commit into the journal
/// (sequential appends + one sync per group); the migrator then drains into
/// the identical replicated store off the critical path.
Measured measure_append_commit() {
  util::Rng rng(0x10C);  // identical image stream
  sim::CostModel costs{};
  storage::LocalDiskBackend local{costs};
  storage::RemoteBackend remote{costs};
  storage::ReplicatedStore home({&local, &remote}, {});
  storage::LogStructuredBackend journal(&home, {});

  Measured result;
  const storage::ChargeFn commit_charge = [&](SimTime t) { result.commit_total += t; };
  const storage::ChargeFn drain_charge = [&](SimTime t) { result.background_total += t; };
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    journal.begin_group();
    for (std::uint64_t writer = 0; writer < kWriters; ++writer) {
      if (journal.store(make_image(rng, writer, round), commit_charge) ==
          storage::kBadImageId) {
        std::exit(1);
      }
      ++result.commits;
    }
    journal.end_group(commit_charge);
    // Drain off the critical path, as the engine's post-commit hook does.
    journal.migrate(drain_charge);
  }
  return result;
}

/// Worker invariance: the identical group-committed, migrated sequence with a
/// 1-worker and an 8-worker migrator pool must leave byte-identical log media,
/// home replica blobs and charge sequences.
bool identical_1v8() {
  struct Run {
    storage::JournalMedia media;
    std::vector<std::vector<std::byte>> blobs;
    std::vector<SimTime> charges;

    bool operator==(const Run&) const = default;
  };
  const auto run_with = [](unsigned workers) {
    util::ThreadPool pool(workers);
    util::Rng rng(0x1D9);
    sim::CostModel costs{};
    storage::LocalDiskBackend local{costs};
    storage::RemoteBackend remote{costs};
    storage::ReplicatedStore home({&local, &remote}, {});
    storage::JournalOptions options;
    options.pool = &pool;
    storage::LogStructuredBackend journal(&home, options);

    Run run;
    const storage::ChargeFn charge = [&](SimTime t) { run.charges.push_back(t); };
    for (std::uint64_t round = 0; round < 3; ++round) {
      journal.begin_group();
      for (std::uint64_t writer = 0; writer < kWriters; ++writer) {
        if (journal.store(make_image(rng, writer, round), charge) ==
            storage::kBadImageId) {
          std::exit(1);
        }
      }
      journal.end_group(charge);
      journal.migrate(charge);
    }
    run.media = journal.media_snapshot();
    for (storage::BlobStoreBackend* replica :
         {static_cast<storage::BlobStoreBackend*>(&local),
          static_cast<storage::BlobStoreBackend*>(&remote)}) {
      for (const storage::ImageId id : replica->list()) {
        run.blobs.push_back(*replica->read_blob(id, nullptr));
      }
    }
    return run;
  };
  return run_with(1) == run_with(8);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_journal.json";
  bench::print_header(
      "bench_journal -- append-commit vs two-phase publish, 4 concurrent writers",
      "commit initiation through the log-structured journal (group-committed "
      "sequential appends, background migrator) must be >= 1.5x faster per "
      "commit than the replicated two-phase publish path");

  const Measured two_phase = measure_two_phase();
  const Measured append = measure_append_commit();
  const double speedup = two_phase.per_commit_ms() / append.per_commit_ms();
  const bool invariant = identical_1v8();

  util::TextTable table({"path", "commits", "per-commit (sim ms)", "background (sim ms)"});
  table.add_row({"two-phase publish", std::to_string(two_phase.commits),
                 util::format_double(two_phase.per_commit_ms(), 3), "0.000"});
  table.add_row({"append-commit", std::to_string(append.commits),
                 util::format_double(append.per_commit_ms(), 3),
                 util::format_double(static_cast<double>(append.background_total) / 1e6, 3)});
  bench::print_table(table);

  std::printf("append-commit speedup at %llu writers: %.2fx (gate 1.5x)\n",
              static_cast<unsigned long long>(kWriters), speedup);
  std::printf("log/home contents 1-vs-8-worker identical: %s\n", invariant ? "yes" : "NO");

  const bool holds = speedup >= 1.5 && invariant;
  bench::print_verdict(holds,
                       "commit initiation is decoupled from replica publication: "
                       "appends + one shared sync beat stage+verify+publish per "
                       "replica, and the migrator never changes observable state");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_journal\",\n");
  std::fprintf(json, "  \"writers\": %llu,\n", static_cast<unsigned long long>(kWriters));
  std::fprintf(json, "  \"commits\": %llu,\n",
               static_cast<unsigned long long>(append.commits));
  std::fprintf(json, "  \"two_phase_ms_per_commit\": %.4f,\n", two_phase.per_commit_ms());
  std::fprintf(json, "  \"append_commit_ms_per_commit\": %.4f,\n", append.per_commit_ms());
  std::fprintf(json, "  \"migrator_background_ms_total\": %.4f,\n",
               static_cast<double>(append.background_total) / 1e6);
  std::fprintf(json, "  \"speedup_append_4writers\": %.4f,\n", speedup);
  std::fprintf(json, "  \"target_speedup\": 1.5,\n");
  std::fprintf(json, "  \"identical_1v8\": %s,\n", invariant ? "true" : "false");
  std::fprintf(json, "  \"holds\": %s\n}\n", holds ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
