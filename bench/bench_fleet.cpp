// Fleet-scale autonomic checkpointing: node-count sweep + torture gates.
//
// The survey's §4.1 scalability claim is that autonomic (node-initiated,
// staggered) checkpointing keeps per-window storage load flat as the fleet
// grows, where centralized batch initiation stampedes.  This bench sweeps
// FleetManager over node counts under an identical per-node policy and
// fault environment, and measures commit throughput, storage bandwidth,
// detection-to-recovered latency distributions and the data-loss gate.
//
// CI gates (BENCH_fleet.json, path = argv[1]):
//   * data_loss_with_intact_replica == 0 across the whole sweep,
//   * commit efficiency (ok/scheduled) >= 0.9 at the largest fleet,
//   * >= 4x commit scaling from 32 -> 512 active nodes,
//   * 1-vs-8-worker byte-identical fleet report digests (torture on).
//
// Deterministic (sim + seeded rng; no host timing).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/fleet.hpp"

using namespace ckpt;

namespace {

constexpr std::uint64_t kWindows = 32;

struct SweepPoint {
  int nodes = 0;
  cluster::FleetReport report;
  double commits_per_sim_s = 0;
  double mb_per_sim_s = 0;
  SimTime detect_p50 = 0;
  SimTime detect_p99 = 0;
  SimTime recover_p50 = 0;
  SimTime recover_p99 = 0;
};

SimTime percentile(std::vector<SimTime> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[rank];
}

cluster::FleetOptions options_for(int nodes) {
  cluster::FleetOptions options;
  options.active_nodes = nodes;
  options.spare_nodes = std::max(4, nodes / 8);
  options.shards = std::max(4, nodes / 32);
  options.seed = 97;
  options.policy.initial_interval = 4 * options.window;
  options.policy.initial_mtbf = 10 * kSecond;
  options.guest_steps_min = 1;
  options.guest_steps_max = 3;
  options.array_bytes = 4 * 1024;
  return options;
}

cluster::FleetTortureOptions torture_for() {
  cluster::FleetTortureOptions torture;
  torture.failure_models.push_back(
      {cluster::FailureModel::Kind::kExponential, 600 * kSecond, 0.7, 0, 101});
  torture.failure_models.push_back(
      {cluster::FailureModel::Kind::kWeibull, 1800 * kSecond, 0.7, 0, 202});
  torture.heartbeat_drop_per_window = 0.0005;
  torture.heartbeat_drop_beats = 6;
  torture.storage_fault_per_window = 0.25;
  return torture;
}

SweepPoint run_point(int nodes) {
  cluster::FleetManager fleet(options_for(nodes));
  fleet.run(3);  // warm-up: every slot commits once before the faults
  fleet.arm_torture(torture_for());
  SweepPoint point;
  point.nodes = nodes;
  point.report = fleet.run(kWindows);
  const double sim_s = static_cast<double>(point.report.sim_elapsed) / 1e9;
  point.commits_per_sim_s = static_cast<double>(point.report.commits_ok) / sim_s;
  point.mb_per_sim_s =
      static_cast<double>(point.report.durable_bytes) / (1024.0 * 1024.0) / sim_s;
  point.detect_p50 = percentile(point.report.detect_latency, 0.50);
  point.detect_p99 = percentile(point.report.detect_latency, 0.99);
  point.recover_p50 = percentile(point.report.recover_latency, 0.50);
  point.recover_p99 = percentile(point.report.recover_latency, 0.99);
  return point;
}

/// 1-vs-8-worker identity under full torture at a mid-size fleet.
bool identical_1v8() {
  const auto digest_with = [](std::uint32_t workers) {
    cluster::FleetOptions options = options_for(64);
    options.workers = workers;
    cluster::FleetManager fleet(options);
    cluster::FleetTortureOptions torture = torture_for();
    torture.failure_models[0].mtbf = 120 * kSecond;
    fleet.arm_torture(torture);
    return fleet.run(24).digest();
  };
  return digest_with(1) == digest_with(8);
}

double ms(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  bench::print_header(
      "bench_fleet -- autonomic fleet checkpointing across node counts",
      "staggered per-node initiation keeps commit efficiency flat as the fleet "
      "grows 16x, detection/recovery latencies stay window-bounded, and no "
      "recoverable state is ever lost");

  std::vector<SweepPoint> sweep;
  for (const int nodes : {32, 128, 512}) sweep.push_back(run_point(nodes));
  const bool invariant = identical_1v8();

  util::TextTable table({"nodes", "commits", "commits/sim-s", "MB/sim-s", "peak/window",
                         "replaced", "detect p50/p99 (ms)", "recover p50/p99 (ms)",
                         "data loss"});
  for (const SweepPoint& point : sweep) {
    table.add_row(
        {std::to_string(point.nodes), std::to_string(point.report.commits_ok),
         util::format_double(point.commits_per_sim_s, 1),
         util::format_double(point.mb_per_sim_s, 1),
         std::to_string(point.report.max_commits_one_window),
         std::to_string(point.report.replacements),
         util::format_double(ms(point.detect_p50), 0) + "/" +
             util::format_double(ms(point.detect_p99), 0),
         util::format_double(ms(point.recover_p50), 0) + "/" +
             util::format_double(ms(point.recover_p99), 0),
         std::to_string(point.report.data_loss_with_intact_replica)});
  }
  bench::print_table(table);

  std::uint64_t data_loss = 0;
  std::uint64_t verify_failures = 0;
  for (const SweepPoint& point : sweep) {
    data_loss += point.report.data_loss_with_intact_replica;
    verify_failures += point.report.verify_failures;
  }
  const SweepPoint& small = sweep.front();
  const SweepPoint& large = sweep.back();
  const double efficiency =
      static_cast<double>(large.report.commits_ok) /
      static_cast<double>(std::max<std::uint64_t>(1, large.report.commits_scheduled));
  const double scaling = static_cast<double>(large.report.commits_ok) /
                         static_cast<double>(std::max<std::uint64_t>(1, small.report.commits_ok));

  std::printf("commit efficiency at %d nodes: %.3f (gate 0.9)\n", large.nodes, efficiency);
  std::printf("commit scaling %d -> %d nodes: %.2fx (gate 4x)\n", small.nodes, large.nodes,
              scaling);
  std::printf("fleet report 1-vs-8-worker identical: %s\n", invariant ? "yes" : "NO");

  const bool holds = data_loss == 0 && verify_failures == 0 && efficiency >= 0.9 &&
                     scaling >= 4.0 && invariant;
  bench::print_verdict(holds,
                       "autonomic initiation scales: staggered shards keep the "
                       "commit stream level while detection, replacement and "
                       "re-seeding absorb continuous failures without data loss");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_fleet\",\n");
  std::fprintf(json, "  \"windows\": %llu,\n", static_cast<unsigned long long>(kWindows));
  std::fprintf(json, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& point = sweep[i];
    std::fprintf(json,
                 "    {\"nodes\": %d, \"commits_ok\": %llu, \"commits_scheduled\": %llu, "
                 "\"commits_per_sim_s\": %.1f, \"storage_mb_per_sim_s\": %.2f, "
                 "\"max_commits_one_window\": %llu, \"replacements\": %llu, "
                 "\"reseeds_from_image\": %llu, \"detect_p50_ms\": %.1f, "
                 "\"detect_p99_ms\": %.1f, \"recover_p50_ms\": %.1f, "
                 "\"recover_p99_ms\": %.1f, \"data_loss\": %llu}%s\n",
                 point.nodes, static_cast<unsigned long long>(point.report.commits_ok),
                 static_cast<unsigned long long>(point.report.commits_scheduled),
                 point.commits_per_sim_s, point.mb_per_sim_s,
                 static_cast<unsigned long long>(point.report.max_commits_one_window),
                 static_cast<unsigned long long>(point.report.replacements),
                 static_cast<unsigned long long>(point.report.reseeds_from_image),
                 ms(point.detect_p50), ms(point.detect_p99), ms(point.recover_p50),
                 ms(point.recover_p99),
                 static_cast<unsigned long long>(point.report.data_loss_with_intact_replica),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"data_loss_with_intact_replica\": %llu,\n",
               static_cast<unsigned long long>(data_loss));
  std::fprintf(json, "  \"verify_failures\": %llu,\n",
               static_cast<unsigned long long>(verify_failures));
  std::fprintf(json, "  \"efficiency_at_512\": %.4f,\n", efficiency);
  std::fprintf(json, "  \"target_efficiency\": 0.9,\n");
  std::fprintf(json, "  \"scaling_32_to_512\": %.4f,\n", scaling);
  std::fprintf(json, "  \"target_scaling\": 4.0,\n");
  std::fprintf(json, "  \"identical_1v8\": %s,\n", invariant ? "true" : "false");
  std::fprintf(json, "  \"holds\": %s\n}\n", holds ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
