// Fault-injection torture soak (standalone entry).
//
// Runs the randomized checkpoint–crash–restart harness (src/inject) over
// the default engine battery and prints one line per engine plus a verdict.
// Everything replays from the seed:
//
//   ./soak_torture [seed] [cycles-per-engine]
//
// Exit status is non-zero when any engine shows a violation (state
// divergence, restart from a corrupt image, or a restart failure despite an
// intact image), so the soak can gate CI directly.
#include <cstdio>
#include <cstdlib>
#include <cstdint>

#include "inject/torture.hpp"

using namespace ckpt;

namespace {

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 0);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  inject::TortureOptions options;
  options.seed = 2005;  // ipps vintage
  options.cycles = 200;
  if ((argc > 1 && !parse_u64(argv[1], options.seed)) ||
      (argc > 2 && !parse_u64(argv[2], options.cycles)) || argc > 3) {
    std::fprintf(stderr, "usage: %s [seed] [cycles-per-engine]\n", argv[0]);
    return 2;
  }
  if (options.cycles == 0) {
    std::fprintf(stderr, "cycles-per-engine must be > 0 (a 0-cycle soak proves nothing)\n");
    return 2;
  }

  std::printf("# torture soak: seed=%llu cycles/engine=%llu\n",
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.cycles));

  inject::TortureHarness harness(options);
  bool all_ok = true;
  for (const inject::TortureReport& report : harness.run_all(inject::default_targets())) {
    std::printf("%s\n", report.summary().c_str());
    for (const std::string& diagnostic : report.diagnostics) {
      std::printf("  !! %s\n", diagnostic.c_str());
    }
    all_ok = all_ok && report.ok();
  }
  std::printf("verdict: %s (replay with ./soak_torture %llu %llu)\n",
              all_ok ? "PASS" : "FAIL", static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(options.cycles));
  return all_ok ? 0 : 1;
}
