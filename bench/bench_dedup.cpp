// Content-addressed dedup: durable bytes per commit across a dirty-rate
// sweep, flat blob path vs DedupStore on the same image sequence.
//
// The survey's incremental-checkpointing claim (§3.3) is about *capture*
// volume; the dedup store extends it to *durable* volume: even a full-image
// commit should cost media bytes proportional to the dirty fraction, because
// clean pages dedup against the chunks already on media.  The CI gate
// requires <= 0.3x the flat path at a 10% dirty rate, plus the two hard
// invariants: bit-identical round-trips and worker-count-invariant replica
// contents in replicated dedup mode.
//
// Deterministic (sim + seeded rng; no host timing).  Emits BENCH_dedup.json
// (path = argv[1], default ./BENCH_dedup.json) for the CI archive + gate.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "storage/backend.hpp"
#include "storage/dedup.hpp"
#include "storage/image.hpp"
#include "storage/replicated.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

using namespace ckpt;

namespace {

constexpr std::uint64_t kPages = 256;  // 1 MiB address space
constexpr int kCommits = 8;            // measured commits after the base image

std::vector<std::byte> random_page(util::Rng& rng) {
  std::vector<std::byte> data(sim::kPageSize);
  for (std::size_t i = 0; i < data.size(); i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (std::size_t b = 0; b < 8 && i + b < data.size(); ++b) {
      data[i + b] = static_cast<std::byte>(word >> (8 * b));
    }
  }
  return data;
}

storage::CheckpointImage image_of(const std::vector<std::vector<std::byte>>& pages,
                                  std::uint64_t tag) {
  storage::CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = 7;
  image.process_name = "bench";
  image.taken_at = tag;
  image.threads.push_back(storage::ThreadImage{1, {}});
  storage::MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(0x100000), kPages, sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::uint64_t p = 0; p < pages.size(); ++p) {
    storage::PageImage page;
    page.page = seg.vma.first_page + p;
    page.data = pages[p];
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

struct Sample {
  double dirty = 0;
  std::uint64_t flat_per_commit = 0;
  std::uint64_t dedup_per_commit = 0;
  double ratio = 1.0;
  bool roundtrip_identical = false;
};

/// Store the same full-image sequence (a rotating `dirty` fraction of pages
/// rewritten with fresh random content between commits) through a flat blob
/// backend and a DedupStore, and compare durable media growth per commit.
Sample measure(double dirty) {
  util::Rng rng(0xDED0 + static_cast<std::uint64_t>(dirty * 1000));
  std::vector<std::vector<std::byte>> pages;
  pages.reserve(kPages);
  for (std::uint64_t p = 0; p < kPages; ++p) pages.push_back(random_page(rng));

  sim::CostModel costs{};
  storage::LocalDiskBackend flat{costs};
  storage::LocalDiskBackend media{costs};
  storage::DedupStore dedup{&media};

  storage::CheckpointImage image = image_of(pages, 0);
  if (flat.store(image, nullptr) == storage::kBadImageId) std::exit(1);
  if (dedup.store(image, nullptr) == storage::kBadImageId) std::exit(1);
  const std::uint64_t flat_base = flat.stored_bytes();
  const std::uint64_t media_base = media.stored_bytes();

  const std::uint64_t dirty_pages = static_cast<std::uint64_t>(dirty * kPages + 0.5);
  storage::ImageId last_id = storage::kBadImageId;
  for (int commit = 1; commit <= kCommits; ++commit) {
    // Rotate the dirty window so reuse comes from content identity, not from
    // always touching the same slots.
    const std::uint64_t start = (commit * dirty_pages) % kPages;
    for (std::uint64_t d = 0; d < dirty_pages; ++d) {
      pages[(start + d) % kPages] = random_page(rng);
    }
    image = image_of(pages, static_cast<std::uint64_t>(commit));
    if (flat.store(image, nullptr) == storage::kBadImageId) std::exit(1);
    last_id = dedup.store(image, nullptr);
    if (last_id == storage::kBadImageId) std::exit(1);
  }

  Sample sample;
  sample.dirty = dirty;
  sample.flat_per_commit = (flat.stored_bytes() - flat_base) / kCommits;
  sample.dedup_per_commit = (media.stored_bytes() - media_base) / kCommits;
  sample.ratio = static_cast<double>(sample.dedup_per_commit) /
                 static_cast<double>(sample.flat_per_commit);
  const auto loaded = dedup.load(last_id, nullptr);
  sample.roundtrip_identical =
      loaded.has_value() && loaded->serialize() == image.serialize();
  return sample;
}

/// Replicated dedup determinism: the identical store sequence through a
/// 1-worker and an 8-worker pool must leave byte-identical replica contents
/// and the identical sim-time charge sequence.
bool replicated_identical_1v8() {
  struct Run {
    std::vector<std::vector<std::byte>> blobs;
    std::vector<SimTime> charges;
  };
  auto run_with = [](unsigned workers) {
    util::ThreadPool pool(workers);
    sim::CostModel costs{};
    storage::LocalDiskBackend local{costs};
    storage::RemoteBackend remote{costs};
    storage::ReplicatedOptions options;
    options.dedup = true;
    options.pool = &pool;
    storage::ReplicatedStore store({&local, &remote}, options);

    util::Rng rng(0x1D8);
    std::vector<std::vector<std::byte>> pages;
    for (std::uint64_t p = 0; p < 32; ++p) pages.push_back(random_page(rng));
    Run run;
    const storage::ChargeFn charge = [&](SimTime t) { run.charges.push_back(t); };
    for (std::uint64_t tag = 0; tag < 4; ++tag) {
      pages[tag * 3 % pages.size()] = random_page(rng);
      if (store.store(image_of(pages, tag), charge) == storage::kBadImageId) std::exit(1);
    }
    for (storage::BlobStoreBackend* replica : {static_cast<storage::BlobStoreBackend*>(&local),
                                               static_cast<storage::BlobStoreBackend*>(&remote)}) {
      for (const storage::ImageId id : replica->list()) {
        run.blobs.push_back(*replica->read_blob(id, nullptr));
      }
    }
    return run;
  };
  const Run serial = run_with(1);
  const Run pooled = run_with(8);
  return serial.blobs == pooled.blobs && serial.charges == pooled.charges;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_dedup.json";
  bench::print_header(
      "bench_dedup -- durable bytes per commit, flat blob path vs dedup store",
      "at a 10% dirty rate the content-addressed store must keep durable "
      "bytes per full-image commit <= 0.3x the flat path");

  const double sweep[] = {0.02, 0.05, 0.10, 0.20, 0.50, 1.00};
  std::vector<Sample> samples;
  util::TextTable table({"dirty rate", "flat/commit", "dedup/commit", "dedup/flat"});
  double ratio_10 = 1.0;
  bool roundtrips = true;
  for (const double dirty : sweep) {
    const Sample sample = measure(dirty);
    samples.push_back(sample);
    roundtrips = roundtrips && sample.roundtrip_identical;
    if (dirty == 0.10) ratio_10 = sample.ratio;
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%%", dirty * 100.0);
    table.add_row({label, util::format_bytes(sample.flat_per_commit),
                   util::format_bytes(sample.dedup_per_commit),
                   util::format_double(sample.ratio, 3)});
  }
  bench::print_table(table);

  const bool identical_1v8 = replicated_identical_1v8();
  std::printf("round-trips bit-identical: %s\n", roundtrips ? "yes" : "NO");
  std::printf("replicated dedup 1-vs-8-worker identical: %s\n", identical_1v8 ? "yes" : "NO");

  const bool holds = ratio_10 <= 0.3 && roundtrips && identical_1v8;
  bench::print_verdict(holds,
                       "durable volume tracks the dirty rate (<= 0.3x at 10%), "
                       "round-trips are exact, replicas are worker-invariant");

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"bench_dedup\",\n");
  std::fprintf(json, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(json,
                 "    {\"dirty\": %.2f, \"flat_bytes_per_commit\": %llu, "
                 "\"dedup_bytes_per_commit\": %llu, \"ratio\": %.4f}%s\n",
                 s.dirty, static_cast<unsigned long long>(s.flat_per_commit),
                 static_cast<unsigned long long>(s.dedup_per_commit), s.ratio,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"ratio_10pct_dirty\": %.4f,\n", ratio_10);
  std::fprintf(json, "  \"target_ratio\": 0.3,\n");
  std::fprintf(json, "  \"roundtrip_identical\": %s,\n", roundtrips ? "true" : "false");
  std::fprintf(json, "  \"identical_1v8\": %s,\n", identical_1v8 ? "true" : "false");
  std::fprintf(json, "  \"holds\": %s\n}\n", holds ? "true" : "false");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
