// C12 (§3, CoCheck/CLIP/LAM-MPI) — Checkpointing a message-passing job needs
// coordination: senders quiesce and in-flight messages drain before
// per-process images are cut.  Cost scales with rank count and with the
// traffic in flight.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/mpi.hpp"
#include "core/systemlevel.hpp"

using namespace ckpt;

namespace {

struct Sample {
  SimTime drain_time;
  SimTime total_time;
  std::uint64_t drained;
  std::uint64_t payload;
  bool ok;
};

Sample run(int nranks, std::uint64_t halo_bytes) {
  cluster::Cluster cluster(4, cluster::NodeConfig{});
  cluster::MpiRankGuest::Config config;
  config.array_bytes = 64 * 1024;
  config.halo_bytes = halo_bytes;
  cluster::MpiJob job(cluster, nranks, config);
  job.launch();
  cluster.run_until(40 * kMillisecond);

  std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
  std::vector<core::CheckpointEngine*> raw;
  for (int i = 0; i < cluster.size(); ++i) {
    sim::SimKernel& kernel = cluster.node(i).kernel();
    sim::KernelModule& module = kernel.load_module("blcr");
    engines.push_back(std::make_unique<core::KernelThreadEngine>(
        "blcr", &cluster.remote_storage(), core::EngineOptions{}, kernel,
        core::KernelThreadEngine::ThreadConfig{}, &module));
    raw.push_back(engines.back().get());
  }
  const auto result = job.coordinated_checkpoint(raw);
  return Sample{result.drain_time, result.total_time, result.messages_drained,
                result.payload_bytes, result.ok};
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C12 -- coordinated checkpointing of message-passing jobs",
                      "in-flight messages must drain before per-rank images are cut "
                      "(CoCheck [28] / CLIP [7] / LAM-MPI [32] lineage)");

  util::TextTable table({"ranks", "halo", "msgs drained", "drain time", "total time",
                         "job image"});
  SimTime small_total = 0, large_total = 0;
  bool all_ok = true;
  for (int nranks : {2, 8, 24}) {
    const Sample s = run(nranks, 1024);
    all_ok = all_ok && s.ok;
    if (nranks == 2) small_total = s.total_time;
    if (nranks == 24) large_total = s.total_time;
    table.add_row({std::to_string(nranks), "1 KiB", std::to_string(s.drained),
                   util::format_time_ns(s.drain_time), util::format_time_ns(s.total_time),
                   util::format_bytes(s.payload)});
  }
  const Sample heavy = run(8, 16 * 1024);
  table.add_row({"8", "16 KiB", std::to_string(heavy.drained),
                 util::format_time_ns(heavy.drain_time),
                 util::format_time_ns(heavy.total_time), util::format_bytes(heavy.payload)});
  bench::print_table(table);

  bench::print_verdict(all_ok && large_total > small_total,
                       "coordination succeeds for every job size, with cost growing "
                       "in rank count (and the drained traffic never leaks into a "
                       "torn image)");
  return 0;
}
