// C3 (§1, [31]) — Incremental checkpointing shrinks checkpoint volume by the
// application's dirty fraction; "the reduction ... depends strongly on the
// application".
//
// Three write patterns (dense random, sparse hot-set, sequential sweep) are
// checkpointed with full images and with kernel write-protect incremental
// tracking.  Series: bytes written to storage per checkpoint.
// The "durable" columns replay the same workload with the engine writing
// through a content-addressed DedupStore (storage/dedup): stored media bytes
// per checkpoint, which dedup shrinks further than capture-side tracking
// alone (unchanged captured pages dedup away; changed pages delta-encode).
#include <cstdio>

#include "bench_common.hpp"
#include "core/incremental.hpp"
#include "core/systemlevel.hpp"
#include "storage/dedup.hpp"

using namespace ckpt;

namespace {

struct Volumes {
  std::uint64_t full = 0;
  std::uint64_t delta = 0;
  std::uint64_t durable_flat = 0;   ///< stored bytes per incremental, flat blobs
  std::uint64_t durable_dedup = 0;  ///< stored bytes per incremental, DedupStore
};

Volumes measure(const char* guest, double working_set, bool dedup) {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  storage::DedupStore dedup_store{&backend};
  core::EngineOptions options;
  options.incremental = true;
  options.tracker_factory = [] { return std::make_unique<core::KernelWpTracker>(); };
  options.full_every = 1000;
  core::SyscallEngine engine("inc",
                             dedup ? static_cast<storage::StorageBackend*>(&dedup_store)
                                   : static_cast<storage::StorageBackend*>(&backend),
                             options, kernel, core::SyscallEngine::TargetMode::kByPid, nullptr);

  sim::WriterConfig config;
  config.array_bytes = 1024 * 1024;
  config.writes_per_step = 32;
  config.working_set_fraction = working_set;
  const sim::Pid pid =
      kernel.spawn(guest, config.encode(), sim::spawn_options_for_array(config.array_bytes));
  engine.attach(kernel, pid);
  kernel.run_until(kernel.now() + 20 * kMillisecond);

  Volumes volumes;
  const auto full = engine.request_checkpoint(kernel, pid);
  volumes.full = full.payload_bytes;
  // Average three incremental rounds; durable volume is media growth.
  std::uint64_t total = 0;
  const std::uint64_t durable_base = backend.stored_bytes();
  for (int i = 0; i < 3; ++i) {
    kernel.run_until(kernel.now() + 20 * kMillisecond);
    total += engine.request_checkpoint(kernel, pid).payload_bytes;
  }
  volumes.delta = total / 3;
  const std::uint64_t durable = (backend.stored_bytes() - durable_base) / 3;
  (dedup ? volumes.durable_dedup : volumes.durable_flat) = durable;
  return volumes;
}

/// Flat and dedup runs use separate kernels seeded identically, so the guest
/// write sequence (and therefore the captured images) match exactly.
Volumes measure(const char* guest, double working_set) {
  Volumes flat = measure(guest, working_set, /*dedup=*/false);
  const Volumes deduped = measure(guest, working_set, /*dedup=*/true);
  flat.durable_dedup = deduped.durable_dedup;
  return flat;
}

}  // namespace

int main() {
  sim::register_standard_guests();
  bench::print_header("C3 -- incremental checkpoint volume by application write pattern",
                      "\"the reduction in the size of the checkpoint data depends "
                      "strongly on the application\" (section 1, citing [31])");

  struct Workload {
    const char* label;
    const char* guest;
    double working_set;
  };
  const Workload workloads[] = {
      {"dense random writes", sim::DenseWriterGuest::kTypeName, 1.0},
      {"sparse 5% hot set", sim::SparseWriterGuest::kTypeName, 0.05},
      {"sparse 20% hot set", sim::SparseWriterGuest::kTypeName, 0.20},
      {"sequential sweep", sim::SweepWriterGuest::kTypeName, 1.0},
  };

  util::TextTable table({"workload", "full image", "avg incremental", "delta/full",
                         "durable flat", "durable dedup"});
  double sparse_ratio = 1.0, dense_ratio = 1.0;
  for (const Workload& w : workloads) {
    const Volumes v = measure(w.guest, w.working_set);
    const double ratio = static_cast<double>(v.delta) / static_cast<double>(v.full);
    if (std::string(w.label).find("5%") != std::string::npos) sparse_ratio = ratio;
    if (std::string(w.label).find("dense") != std::string::npos) dense_ratio = ratio;
    table.add_row({w.label, util::format_bytes(v.full), util::format_bytes(v.delta),
                   util::format_double(ratio, 3), util::format_bytes(v.durable_flat),
                   util::format_bytes(v.durable_dedup)});
  }
  bench::print_table(table);
  bench::print_verdict(sparse_ratio < 0.3 && sparse_ratio < dense_ratio,
                       "sparse writers gain large reductions; dense writers gain "
                       "little -- the application-dependence the paper reports");
  return 0;
}
