// Micro-benchmarks of the substrate itself (google-benchmark): real
// wall-clock cost of the simulator's hot paths, so regressions in the
// reproduction harness are visible.
#include <benchmark/benchmark.h>

#include "core/capture.hpp"
#include "sim/guests.hpp"
#include "sim/kernel.hpp"
#include "storage/image.hpp"
#include "util/crc64.hpp"
#include "util/serialize.hpp"

namespace {

using namespace ckpt;

void BM_Crc64(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc64(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc64)->Arg(4096)->Arg(65536);

void BM_GuestStep(benchmark::State& state) {
  sim::register_standard_guests();
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = static_cast<std::uint64_t>(state.range(0));
  kernel.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
               sim::spawn_options_for_array(config.array_bytes));
  for (auto _ : state) {
    kernel.run_round();
  }
}
BENCHMARK(BM_GuestStep)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_KernelCapture(benchmark::State& state) {
  sim::register_standard_guests();
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = static_cast<std::uint64_t>(state.range(0));
  const sim::Pid pid = kernel.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  kernel.run_until(kernel.now() + 2 * kMillisecond);
  sim::Process& proc = kernel.process(pid);
  for (auto _ : state) {
    auto image = core::capture_kernel_level(kernel, proc, core::CaptureOptions{});
    benchmark::DoNotOptimize(image.payload_bytes());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelCapture)->Arg(256 * 1024)->Arg(1024 * 1024);

void BM_ImageSerializeRoundTrip(benchmark::State& state) {
  sim::register_standard_guests();
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = static_cast<std::uint64_t>(state.range(0));
  const sim::Pid pid = kernel.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  kernel.run_until(kernel.now() + 2 * kMillisecond);
  const auto image =
      core::capture_kernel_level(kernel, kernel.process(pid), core::CaptureOptions{});
  for (auto _ : state) {
    const auto bytes = image.serialize();
    auto copy = storage::CheckpointImage::deserialize(bytes);
    benchmark::DoNotOptimize(copy.page_count());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ImageSerializeRoundTrip)->Arg(256 * 1024);

void BM_ForkCow(benchmark::State& state) {
  sim::register_standard_guests();
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = 1024 * 1024;
  const sim::Pid pid = kernel.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  kernel.run_until(kernel.now() + 2 * kMillisecond);
  sim::Process& proc = kernel.process(pid);
  for (auto _ : state) {
    const sim::Pid child = kernel.fork_process(proc, true);
    kernel.terminate(kernel.process(child), 0);
    kernel.reap(child);
  }
}
BENCHMARK(BM_ForkCow);

}  // namespace

BENCHMARK_MAIN();
