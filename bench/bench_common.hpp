// Shared scaffolding for the experiment benches.
//
// Each binary reproduces one artifact of the paper (a figure, the table, or
// one of the survey's qualitative claims as a quantitative experiment) and
// prints series in a stable text format quoted by EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "sim/guests.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ckpt::bench {

inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void print_table(const util::TextTable& table) {
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n");
}

inline void print_verdict(bool holds, const std::string& statement) {
  std::printf("[%s] %s\n\n", holds ? "HOLDS" : "DEVIATES", statement.c_str());
}

}  // namespace ckpt::bench
