#include <cstring>
#include <gtest/gtest.h>

#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::sim {
namespace {

using ckpt::test::SimTest;

class UserApiTest : public SimTest {
 protected:
  void SetUp() override {
    SimTest::SetUp();
    pid_ = kernel_.spawn(CounterGuest::kTypeName);
    proc_ = kernel_.find_process(pid_);
    api_ = std::make_unique<UserApi>(kernel_, *proc_);
  }

  SimKernel kernel_;
  Pid pid_ = kNoPid;
  Process* proc_ = nullptr;
  std::unique_ptr<UserApi> api_;
};

TEST_F(UserApiTest, SyscallsAreCountedAndCharged) {
  const auto count = proc_->stats.syscalls;
  // Outside a scheduling step, charges land on the global clock.
  const SimTime t0 = kernel_.now();
  (void)api_->sys_getpid();
  (void)api_->sys_getpid();
  EXPECT_EQ(proc_->stats.syscalls, count + 2);
  EXPECT_GE(kernel_.now() - t0, 2 * kernel_.costs().syscall_crossing_ns);
}

TEST_F(UserApiTest, SbrkGrowsAndQueriesHeap) {
  const VAddr initial = api_->sys_sbrk(0);
  EXPECT_EQ(initial, proc_->brk);
  const VAddr old = api_->sys_sbrk(3 * kPageSize + 100);
  EXPECT_EQ(old, initial);
  EXPECT_EQ(api_->sys_sbrk(0), initial + 3 * kPageSize + 100);
  // The grown heap is writable.
  EXPECT_TRUE(api_->store_u64(initial + 2 * kPageSize, 0xBEEF));
  EXPECT_EQ(api_->load_u64(initial + 2 * kPageSize), 0xBEEFu);
}

TEST_F(UserApiTest, SbrkShrinkClampsAtHeapBase) {
  api_->sys_sbrk(-static_cast<std::int64_t>(1) << 40);
  EXPECT_EQ(proc_->brk, proc_->heap_base);
}

TEST_F(UserApiTest, MmapAndMunmap) {
  const VAddr addr = api_->sys_mmap(3 * kPageSize, kProtRW, "scratch");
  ASSERT_NE(addr, 0u);
  EXPECT_TRUE(api_->store_u64(addr + kPageSize, 42));
  const VAddr addr2 = api_->sys_mmap(kPageSize, kProtRW, "scratch2");
  EXPECT_GE(addr2, addr + 3 * kPageSize);  // guard gap, no overlap
  api_->sys_munmap(addr);
  EXPECT_EQ(proc_->aspace->find_vma(addr), nullptr);
}

TEST_F(UserApiTest, FileWriteReadSeekDup) {
  const Fd fd = api_->sys_open("/tmp/t", kOpenCreate | kOpenWrite | kOpenRead);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->sys_write(fd, std::string_view("hello world")), 11);
  EXPECT_EQ(api_->sys_lseek(fd, 0, SeekWhence::kSet), 0);

  const Fd dup = api_->sys_dup(fd);
  ASSERT_GE(dup, 0);
  std::byte buffer[5];
  EXPECT_EQ(api_->sys_read(dup, buffer), 5);
  EXPECT_EQ(std::memcmp(buffer, "hello", 5), 0);
  // dup shares the offset (one open file description).
  EXPECT_EQ(api_->sys_lseek(fd, 0, SeekWhence::kCur), 5);

  EXPECT_EQ(api_->sys_lseek(fd, -5, SeekWhence::kEnd), 6);
  EXPECT_EQ(api_->sys_read(fd, buffer), 5);
  EXPECT_EQ(std::memcmp(buffer, "world", 5), 0);
  EXPECT_TRUE(api_->sys_close(fd));
  EXPECT_EQ(api_->sys_read(fd, buffer), -9);  // EBADF
  EXPECT_EQ(api_->sys_read(dup, buffer), 0);  // dup still valid, at EOF
}

TEST_F(UserApiTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(api_->sys_open("/no/such/file", kOpenRead), kBadFd);
}

TEST_F(UserApiTest, OpenTruncateClearsFile) {
  const Fd fd = api_->sys_open("/tmp/t", kOpenCreate | kOpenWrite);
  api_->sys_write(fd, std::string_view("data"));
  api_->sys_close(fd);
  const Fd fd2 = api_->sys_open("/tmp/t", kOpenWrite | kOpenTrunc);
  ASSERT_GE(fd2, 0);
  EXPECT_EQ(api_->sys_lseek(fd2, 0, SeekWhence::kEnd), 0);
}

TEST_F(UserApiTest, UnlinkMarksOpenFileDeleted) {
  const Fd fd = api_->sys_open("/tmp/gone", kOpenCreate | kOpenWrite);
  api_->sys_write(fd, std::string_view("x"));
  EXPECT_TRUE(api_->sys_unlink("/tmp/gone"));
  EXPECT_FALSE(kernel_.vfs().exists("/tmp/gone"));
  const auto ofd = proc_->fds.get(fd);
  ASSERT_NE(ofd, nullptr);
  EXPECT_TRUE(ofd->file->deleted);           // node alive via the open fd
  EXPECT_EQ(api_->sys_write(fd, std::string_view("y")), 1);  // still writable
}

TEST_F(UserApiTest, NegativeSeekRejected) {
  const Fd fd = api_->sys_open("/tmp/t", kOpenCreate | kOpenWrite);
  EXPECT_EQ(api_->sys_lseek(fd, -10, SeekWhence::kSet), -22);
}

TEST_F(UserApiTest, MprotectMakesPagesReadOnly) {
  const VAddr addr = api_->sys_mmap(2 * kPageSize, kProtRW, "ro");
  ASSERT_TRUE(api_->store_u64(addr, 1));
  ASSERT_TRUE(api_->sys_mprotect(addr, kPageSize, kProtRead));
  // No handler installed: the store kills the process.
  EXPECT_FALSE(api_->store_u64(addr, 2));
  EXPECT_FALSE(proc_->alive());
}

TEST_F(UserApiTest, SigactionAndSigpending) {
  api_->sys_sigaction(kSigUsr1, SignalDisposition::kIgnore);
  EXPECT_EQ(proc_->signals.disposition[kSigUsr1], SignalDisposition::kIgnore);
  api_->sys_sigprocmask(SignalState::bit(kSigUsr2));
  kernel_.send_signal(pid_, kSigUsr2);
  EXPECT_NE(api_->sys_sigpending() & SignalState::bit(kSigUsr2), 0u);
  // Blocked: not delivered even when scheduled.
  kernel_.run_until(kernel_.now() + 5 * kMillisecond);
  EXPECT_TRUE(proc_->alive());
  EXPECT_TRUE(proc_->signals.is_pending(kSigUsr2));
}

TEST_F(UserApiTest, SleepBlocksUntilDeadline) {
  api_->sys_sleep(10 * kMillisecond);
  EXPECT_EQ(proc_->state, TaskState::kBlocked);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  EXPECT_TRUE(proc_->runnable() || proc_->state == TaskState::kRunning);
}

TEST_F(UserApiTest, SocketsBindAndConflict) {
  const Fd sock = api_->sys_socket();
  ASSERT_GE(sock, 0);
  EXPECT_TRUE(api_->sys_bind(sock, 1234));
  const Fd sock2 = api_->sys_socket();
  EXPECT_FALSE(api_->sys_bind(sock2, 1234));  // port taken
  EXPECT_TRUE(api_->sys_connect(sock2, "remote-host", 80));
  const auto ofd = proc_->fds.get(sock2);
  EXPECT_TRUE(ofd->socket->connected);
  EXPECT_EQ(ofd->socket->peer_host, "remote-host");
}

TEST_F(UserApiTest, CustomSyscallDispatchAndEnosys) {
  kernel_.register_syscall(
      "triple",
      [](SimKernel&, Process&, std::uint64_t a0, std::uint64_t, std::uint64_t) {
        return static_cast<std::int64_t>(a0 * 3);
      },
      nullptr);
  EXPECT_EQ(api_->sys_custom("triple", 14), 42);
  EXPECT_EQ(api_->sys_custom("no_such_call", 1), -38);
}

TEST_F(UserApiTest, LibraryCallDispatchAndMissingSymbol) {
  proc_->library_calls["ckpt_now"] = [](SimKernel&, Process&, std::uint64_t arg) {
    return static_cast<std::int64_t>(arg + 1);
  };
  EXPECT_EQ(api_->call_library("ckpt_now", 41), 42);
  EXPECT_EQ(api_->call_library("missing"), -38);
}

TEST_F(UserApiTest, ProcMapsWalkCostsPerVma) {
  const auto before = proc_->stats.syscalls;
  const auto maps = api_->sys_proc_maps();
  EXPECT_EQ(maps.size(), proc_->aspace->vmas().size());
  EXPECT_GE(proc_->stats.syscalls - before, maps.size());
}

TEST_F(UserApiTest, DeviceIoctlRoundTrip) {
  DeviceHooks hooks;
  hooks.ioctl = [](SimKernel&, Process&, std::uint64_t cmd, std::uint64_t arg) {
    return static_cast<std::int64_t>(cmd + arg);
  };
  kernel_.vfs().register_device("/dev/echo", std::move(hooks));
  const Fd fd = api_->sys_open("/dev/echo", kOpenRead);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(api_->sys_ioctl(fd, 40, 2), 42);
  // ioctl on a regular file is ENOTTY.
  const Fd reg = api_->sys_open("/tmp/reg", kOpenCreate | kOpenWrite);
  EXPECT_EQ(api_->sys_ioctl(reg, 1, 2), -25);
}

TEST_F(UserApiTest, ProcEntryReadWrite) {
  std::string captured;
  ProcEntryHooks hooks;
  hooks.read = [](SimKernel&) { return std::string("status: fine\n"); };
  hooks.write = [&captured](SimKernel&, Process&, std::string_view in) {
    captured = std::string(in);
    return static_cast<std::int64_t>(in.size());
  };
  kernel_.vfs().register_proc_entry("/proc/thing", std::move(hooks));
  const Fd fd = api_->sys_open("/proc/thing", kOpenRead | kOpenWrite);
  ASSERT_GE(fd, 0);
  std::byte buffer[64];
  const auto n = api_->sys_read(fd, buffer);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buffer), static_cast<std::size_t>(n)),
            "status: fine\n");
  EXPECT_GT(api_->sys_write(fd, std::string_view("123")), 0);
  EXPECT_EQ(captured, "123");
}

TEST_F(UserApiTest, InterposerSeesEveryCall) {
  int seen = 0;
  proc_->interposer = [&seen](SimKernel&, Process&, const char*, std::uint64_t,
                              std::uint64_t) { ++seen; };
  (void)api_->sys_getpid();
  (void)api_->sys_sbrk(0);
  (void)api_->sys_open("/tmp/x", kOpenCreate | kOpenWrite);
  EXPECT_EQ(seen, 3);
}

}  // namespace
}  // namespace ckpt::sim
