// Uncoordinated MPI checkpointing: sender-based message log invariants,
// recovery-line computation (domino detection/bounding), restart-only-the-
// failed-rank recovery, and the mpi_uncoordinated crash-replay mode's
// worker-count invariance.  DESIGN.md §14 is the protocol these tests pin.
#include <gtest/gtest.h>

#include "cluster/mpi.hpp"
#include "cluster/msglog.hpp"
#include "cluster/uncoordinated.hpp"
#include "core/systemlevel.hpp"
#include "inject/replay.hpp"
#include "obs/observer.hpp"
#include "storage/journal.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

LoggedMessage make_message(int src, int dst, std::uint64_t seq,
                           std::size_t payload_bytes = 16) {
  LoggedMessage m;
  m.src = src;
  m.dst = dst;
  m.seq = seq;
  m.tag = seq;
  m.payload = std::vector<std::byte>(payload_bytes, std::byte{0x5A});
  return m;
}

// ---------------------------------------------------------------------------
// MessageLog
// ---------------------------------------------------------------------------

TEST(MessageLog, RecordsCoverAndReplayInSequenceOrder) {
  MessageLog log;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    EXPECT_GT(log.record(make_message(0, 1, s)), 0);  // pessimistic: charged
  }
  EXPECT_TRUE(log.covers(0, 1, 1, 5));
  EXPECT_TRUE(log.covers(0, 1, 3, 3));
  EXPECT_TRUE(log.covers(0, 1, 6, 5));   // empty range
  EXPECT_FALSE(log.covers(0, 1, 1, 6));  // seq 6 never logged
  EXPECT_FALSE(log.covers(1, 0, 1, 1));  // other direction never logged
  EXPECT_FALSE(log.covers(0, 1, 1, 5, /*dead_logs=*/{0}));  // owner dead

  const auto suffix = log.suffix(0, 1, 2);
  ASSERT_EQ(suffix.size(), 3u);
  EXPECT_EQ(suffix[0]->seq, 3u);
  EXPECT_EQ(suffix[2]->seq, 5u);
  EXPECT_EQ(log.crc_failures(), 0u);
}

TEST(MessageLog, TrimDropsOnlyDeliveredPrefix) {
  MessageLog log;
  for (std::uint64_t s = 1; s <= 6; ++s) log.record(make_message(0, 1, s));
  EXPECT_EQ(log.trim_delivered(1, {{0, 4}}), 4u);
  EXPECT_FALSE(log.covers(0, 1, 4, 5));  // 4 is gone
  EXPECT_TRUE(log.covers(0, 1, 5, 6));   // suffix intact
  EXPECT_EQ(log.total_trimmed(), 4u);
}

TEST(MessageLog, EncodeRestoreRoundTripsOneSendersEntries) {
  MessageLog log;
  for (std::uint64_t s = 1; s <= 3; ++s) log.record(make_message(0, 1, s));
  log.record(make_message(2, 1, 1));  // another sender: must not be touched
  const std::vector<std::byte> blob = log.encode_sender(0);

  EXPECT_EQ(log.drop_sender(0), 3u);
  EXPECT_FALSE(log.covers(0, 1, 1, 3));
  EXPECT_TRUE(log.covers(2, 1, 1, 1));

  EXPECT_EQ(log.restore_sender(0, blob), 3u);
  EXPECT_TRUE(log.covers(0, 1, 1, 3));
  const auto suffix = log.suffix(0, 1, 0);
  ASSERT_EQ(suffix.size(), 3u);
  EXPECT_EQ(suffix[0]->payload.size(), 16u);  // payloads survived the trip
}

TEST(MessageLog, MetadataOnlyModeTracksDependenciesButCannotReplay) {
  MessageLogOptions options;
  options.log_payloads = false;
  MessageLog log(options);
  log.record(make_message(0, 1, 1));
  // Dependency metadata exists (the resolver can compute the cascade)...
  EXPECT_EQ(log.message_count(), 1u);
  // ...but nothing is replayable, so coverage is always refused.
  EXPECT_FALSE(log.covers(0, 1, 1, 1));
}

// ---------------------------------------------------------------------------
// RollbackResolver
// ---------------------------------------------------------------------------

CheckpointCut make_cut(std::uint64_t sequence, ChannelCut channels) {
  CheckpointCut cut;
  cut.sequence = sequence;
  cut.node = 0;
  cut.pid = 1;
  cut.channels = std::move(channels);
  return cut;
}

TEST(RollbackResolver, CoveredSingleFailureIsDepthOneWidthOne) {
  // Rank 1 delivered up to seq 3 from rank 0 at its newest cut; rank 0 has
  // since sent through seq 5, all logged.  Only rank 1 restarts.
  MessageLog log;
  for (std::uint64_t s = 1; s <= 5; ++s) log.record(make_message(0, 1, s));
  std::map<int, std::vector<CheckpointCut>> cuts;
  cuts[0] = {make_cut(1, ChannelCut{{{1, 5}}, {}})};
  cuts[1] = {make_cut(1, ChannelCut{{}, {{0, 3}}})};
  RollbackResolver resolver(log, cuts, {{{0, 1}, 5}});

  const RecoveryLine line = resolver.resolve({1});
  EXPECT_TRUE(line.bounded);
  EXPECT_EQ(line.width, 1u);
  EXPECT_EQ(line.depth, 1u);
  EXPECT_EQ(line.cascade_rounds, 0u);
  EXPECT_EQ(line.missing_messages, 0u);
  ASSERT_TRUE(line.restart_cut.contains(1));
  EXPECT_EQ(line.restart_cut.at(1), 0);
}

TEST(RollbackResolver, MissingLogCascadesToSenderCheckpoint) {
  // Rank 0's log is dead (it failed too / was never journaled).  Rank 1
  // needs seqs 4..5 replayed; without them, rank 0 must roll to a cut whose
  // send frontier is <= 3 — its older cut — and re-generate them.
  MessageLog log;
  std::map<int, std::vector<CheckpointCut>> cuts;
  cuts[0] = {make_cut(1, ChannelCut{{{1, 3}}, {}}),
             make_cut(2, ChannelCut{{{1, 5}}, {}})};
  cuts[1] = {make_cut(1, ChannelCut{{}, {{0, 3}}})};
  RollbackResolver resolver(log, cuts, {{{0, 1}, 5}});

  const RecoveryLine line = resolver.resolve({1}, /*dead_logs=*/{0});
  EXPECT_TRUE(line.bounded);
  EXPECT_EQ(line.width, 2u);  // the cascade reached rank 0
  ASSERT_TRUE(line.restart_cut.contains(0));
  EXPECT_EQ(line.restart_cut.at(0), 0);  // rolled past its newest cut
  EXPECT_EQ(line.depth, 2u);
  EXPECT_GT(line.missing_messages, 0u);
}

TEST(RollbackResolver, UnboundedDominoIsDetectedNeverSilent) {
  // No log at all and rank 0's only cut already sent past what rank 1's cut
  // delivered: rank 0 must roll past its first checkpoint — unbounded.
  MessageLog log;
  std::map<int, std::vector<CheckpointCut>> cuts;
  cuts[0] = {make_cut(1, ChannelCut{{{1, 5}}, {}})};
  cuts[1] = {make_cut(1, ChannelCut{{}, {{0, 3}}})};
  RollbackResolver resolver(log, cuts, {{{0, 1}, 5}});

  const RecoveryLine line = resolver.resolve({1}, {0, 1});
  EXPECT_FALSE(line.bounded);
  ASSERT_TRUE(line.restart_cut.contains(0));
  EXPECT_EQ(line.restart_cut.at(0), RecoveryLine::kToStart);
  EXPECT_NE(line.describe().find("UNBOUNDED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// UncoordinatedMpi end-to-end
// ---------------------------------------------------------------------------

class UncoordinatedMpiTest : public SimTest {
 protected:
  struct Scenario {
    Cluster cluster;
    std::unique_ptr<MpiJob> job;
    std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
    std::vector<core::CheckpointEngine*> raw;

    explicit Scenario(int nodes, int nranks) : cluster(nodes, NodeConfig{}) {
      MpiFabric::FabricOptions fabric;
      fabric.latency = cluster.node(0).kernel().costs().net_latency_ns;
      fabric.sender_logging = true;
      MpiRankGuest::Config config;
      config.array_bytes = 32 * 1024;
      config.halo_bytes = 512;
      job = std::make_unique<MpiJob>(cluster, nranks, config, fabric);
      job->launch();
      for (int n = 0; n < nodes; ++n) {
        sim::SimKernel& kernel = cluster.node(n).kernel();
        sim::KernelModule& module = kernel.load_module("blcr");
        engines.push_back(std::make_unique<core::KernelThreadEngine>(
            "blcr", &cluster.remote_storage(), core::EngineOptions{}, kernel,
            core::KernelThreadEngine::ThreadConfig{}, &module));
        raw.push_back(engines.back().get());
      }
    }
  };

  static UncoordinatedOptions fixed_interval(SimTime interval) {
    UncoordinatedOptions options;
    options.policy.initial_interval = interval;
    options.policy.adapt_interval = false;
    options.epoch = 2 * kMillisecond;
    return options;
  }
};

TEST_F(UncoordinatedMpiTest, RanksCheckpointIndependentlyWithoutQuiescing) {
  Scenario s(4, 8);
  UncoordinatedMpi manager(s.cluster, *s.job, s.raw, fixed_interval(20 * kMillisecond));
  manager.run_until(70 * kMillisecond);

  // Every rank committed at least once, the network was never quiesced, and
  // messages stayed in flight throughout (no drain ever happened).
  EXPECT_GE(manager.stats().commits, 8u);
  EXPECT_FALSE(s.job->fabric().quiescing());
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(manager.cuts().contains(r)) << "rank " << r;
    EXPECT_FALSE(manager.cuts().at(r).empty());
  }
  EXPECT_GT(s.job->min_iteration(s.cluster), 0u);
  EXPECT_GT(s.job->fabric().log().total_recorded(), 0u);
  EXPECT_GT(manager.stats().messages_trimmed, 0u);  // logs are being bounded
}

TEST_F(UncoordinatedMpiTest, SingleNodeFailureRestartsOnlyItsRanksAtDepthOne) {
  obs::Observer observer;
  Scenario s(4, 8);
  UncoordinatedOptions options = fixed_interval(20 * kMillisecond);
  options.observer = &observer;
  UncoordinatedMpi manager(s.cluster, *s.job, s.raw, options);
  manager.run_until(50 * kMillisecond);
  for (int r = 0; r < 8; ++r) ASSERT_FALSE(manager.cuts().at(r).empty());
  // Let every rank execute well past its newest cut before the failure, so
  // recovery's re-execution genuinely re-sends already-delivered messages.
  s.cluster.run_until(80 * kMillisecond, 2 * kMillisecond);

  s.cluster.fail_node(2);
  const auto result = manager.recover_failed_node(/*failed=*/2, /*target=*/1);
  ASSERT_TRUE(result.ok) << result.error;

  // Ring neighbours live on other nodes (round-robin placement), so their
  // volatile sender logs cover the failed ranks' suffixes: the line is
  // exactly the failed ranks at their newest images.
  EXPECT_EQ(result.line.width, 2u);  // ranks 2 and 6 lived on node 2
  EXPECT_EQ(result.line.depth, 1u);
  EXPECT_GT(result.replayed_messages, 0u);
  for (const auto& placement : s.job->placements()) EXPECT_NE(placement.node, 2);

  // The job progresses, loses nothing, and absorbs re-execution re-sends:
  // the restarted ranks were rewound to their cut frontiers, so their
  // re-execution re-sends sequences the receivers already delivered.  Run
  // the cluster directly (no further commits) so the recovery-loaded target
  // node catches its kernel clock up and the restarted ranks execute.
  const std::uint64_t before = s.job->min_iteration(s.cluster);
  s.cluster.run_until(s.cluster.now() + 60 * kMillisecond, 2 * kMillisecond);
  EXPECT_GT(s.job->min_iteration(s.cluster), before);
  EXPECT_EQ(s.job->fabric().sequence_violations(), 0u);
  EXPECT_GT(s.job->fabric().duplicates_dropped(), 0u);
}

TEST_F(UncoordinatedMpiTest, JournaledLogsKeepConcurrentDoubleFailureAtDepthOne) {
  Scenario s(4, 8);
  storage::LogStructuredBackend journal(&s.cluster.remote_storage());
  UncoordinatedOptions options = fixed_interval(20 * kMillisecond);
  options.log_journal = &journal;
  UncoordinatedMpi manager(s.cluster, *s.job, s.raw, options);
  manager.run_until(50 * kMillisecond);
  for (int r = 0; r < 8; ++r) ASSERT_FALSE(manager.cuts().at(r).empty());

  // Two nodes die at once: the dead ranks' volatile logs are gone, but the
  // journal holds each rank's log as of its newest checkpoint — exactly the
  // window the other dead rank needs.  Depth stays 1.
  s.cluster.fail_node(1);
  s.cluster.fail_node(2);
  const auto result = manager.recover_failed_node(1, /*target=*/0);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.journal_restored_logs, 4u);  // ranks 1,5 and 2,6
  EXPECT_EQ(result.line.depth, 1u);
  EXPECT_EQ(result.line.width, 4u);

  manager.run_until(s.cluster.now() + 40 * kMillisecond);
  EXPECT_GT(s.job->min_iteration(s.cluster), 0u);
  EXPECT_EQ(s.job->fabric().sequence_violations(), 0u);
}

TEST_F(UncoordinatedMpiTest, VolatileDoubleFailureCascadesDeeperThanJournaled) {
  // The domino story, measured: identical scenarios, one with journal-
  // persisted logs (depth 1 above) and one without — the resolver must
  // reach for older cuts or report more rolled-back ranks.
  Scenario s(4, 8);
  UncoordinatedMpi manager(s.cluster, *s.job, s.raw, fixed_interval(20 * kMillisecond));
  manager.run_until(90 * kMillisecond);  // several cuts per rank
  for (int r = 0; r < 8; ++r) ASSERT_FALSE(manager.cuts().at(r).empty());

  s.cluster.fail_node(1);
  s.cluster.fail_node(2);
  // Plan only (no execution): what would recovery look like?
  const RecoveryLine line = manager.plan_recovery({1, 2, 5, 6}, {1, 2, 5, 6});
  // Dead ranks needing each other's dead logs: the cascade must extend
  // beyond restart-only-the-failed-rank — deeper or wider than the
  // journaled case's (depth 1, width 4).
  EXPECT_TRUE(line.depth > 1 || line.width > 4) << line.describe();
}

TEST_F(UncoordinatedMpiTest, UnboundedDominoIsRefusedLoudly) {
  // Metadata-only logging: dependencies are tracked but nothing can be
  // replayed, and with single cuts per rank the cascade escapes every
  // checkpoint.  Recovery must refuse — reportedly, not silently.
  Cluster cluster(4, NodeConfig{});
  MpiFabric::FabricOptions fabric;
  fabric.latency = cluster.node(0).kernel().costs().net_latency_ns;
  fabric.sender_logging = true;
  fabric.log_payloads = false;  // classic uncoordinated, no message logging
  MpiRankGuest::Config config;
  config.array_bytes = 16 * 1024;
  MpiJob job(cluster, 8, config, fabric);
  job.launch();
  std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
  std::vector<core::CheckpointEngine*> raw;
  for (int n = 0; n < 4; ++n) {
    sim::SimKernel& kernel = cluster.node(n).kernel();
    sim::KernelModule& module = kernel.load_module("blcr");
    engines.push_back(std::make_unique<core::KernelThreadEngine>(
        "blcr", &cluster.remote_storage(), core::EngineOptions{}, kernel,
        core::KernelThreadEngine::ThreadConfig{}, &module));
    raw.push_back(engines.back().get());
  }
  UncoordinatedMpi manager(cluster, job, raw, fixed_interval(20 * kMillisecond));
  manager.run_until(50 * kMillisecond);

  cluster.fail_node(2);
  const auto result = manager.recover_failed_node(2, /*target=*/1);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("domino"), std::string::npos) << result.error;
  EXPECT_FALSE(result.line.bounded);
}

// ---------------------------------------------------------------------------
// mpi_uncoordinated crash replay
// ---------------------------------------------------------------------------

TEST_F(UncoordinatedMpiTest, CrashReplayRecoversEveryCrashPointWithZeroLoss) {
  inject::MpiReplayOptions options;
  options.crash_points = 4;
  const inject::MpiReplayReport report = inject::MpiCrashReplay(options).run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.lost_messages, 0u);
  EXPECT_EQ(report.recoveries, 4u);
  EXPECT_GT(report.replayed_messages, 0u);
  EXPECT_EQ(report.max_rollback_depth, 1u);  // single failures, logs live
}

TEST_F(UncoordinatedMpiTest, CrashReplayReportIsWorkerCountInvariant) {
  inject::MpiReplayOptions options;
  options.crash_points = 3;
  options.workers = 1;
  const inject::MpiReplayReport serial = inject::MpiCrashReplay(options).run();
  options.workers = 8;
  const inject::MpiReplayReport wide = inject::MpiCrashReplay(options).run();
  EXPECT_TRUE(serial.ok()) << serial.summary();
  EXPECT_TRUE(serial == wide) << serial.summary() << "\nvs\n" << wide.summary();
  EXPECT_EQ(serial.outcome_digest, wide.outcome_digest);
}

TEST_F(UncoordinatedMpiTest, CrashReplayDoubleFailureWithJournalStaysDepthOne) {
  inject::MpiReplayOptions options;
  options.crash_points = 3;
  options.double_failure = true;
  options.journal_logs = true;
  const inject::MpiReplayReport report = inject::MpiCrashReplay(options).run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.max_rollback_depth, 1u);
  EXPECT_GT(report.journal_restored_logs, 0u);
}

}  // namespace
}  // namespace ckpt::cluster
