#include <gtest/gtest.h>

#include "core/autonomic.hpp"
#include "core/systemlevel.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

TEST(YoungInterval, Formula) {
  // t = sqrt(2 * C * M): C = 2s, M = 3600s => t = 120s.
  EXPECT_NEAR(static_cast<double>(young_interval(2 * kSecond, 3600 * kSecond)),
              120.0 * kSecond, 0.5 * kSecond);
}

TEST(YoungInterval, ShorterMtbfShorterInterval) {
  const SimTime frequent = young_interval(kSecond, 600 * kSecond);
  const SimTime rare = young_interval(kSecond, 6000 * kSecond);
  EXPECT_LT(frequent, rare);
}

class AutonomicTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};

  std::unique_ptr<KernelSignalEngine> make_engine() {
    return std::make_unique<KernelSignalEngine>("auto", &backend_, EngineOptions{}, kernel_,
                                                sim::kSigCkpt, nullptr);
  }
};

TEST_F(AutonomicTest, PeriodicTicksCheckpointManagedProcesses) {
  auto engine = make_engine();
  AutonomicPolicy policy;
  policy.initial_interval = 10 * kMillisecond;
  policy.adapt_interval = false;
  AutonomicManager manager(kernel_, *engine, policy);

  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(manager.manage(pid));
  manager.start();
  kernel_.run_until(kernel_.now() + 55 * kMillisecond);
  manager.stop();

  EXPECT_GE(manager.ticks(), 4u);
  EXPECT_GE(engine->checkpoints_taken(pid), 4u);
}

TEST_F(AutonomicTest, NoApplicationInvolvementNeeded) {
  // The heart of the "direction forward": a plain, unmodified, unprepared
  // process gets checkpointed with zero cooperation.
  auto engine = make_engine();
  AutonomicPolicy policy;
  policy.initial_interval = 10 * kMillisecond;
  AutonomicManager manager(kernel_, *engine, policy);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  const sim::Process& proc = kernel_.process(pid);
  ASSERT_TRUE(proc.library_handlers.empty());
  ASSERT_FALSE(proc.interposer.has_value());
  manager.manage(pid);
  manager.start();
  kernel_.run_until(kernel_.now() + 30 * kMillisecond);
  EXPECT_GE(engine->checkpoints_taken(pid), 1u);
  EXPECT_TRUE(proc.library_handlers.empty());  // still untouched
}

TEST_F(AutonomicTest, IntervalAdaptsToFailures) {
  auto engine = make_engine();
  AutonomicPolicy policy;
  policy.initial_interval = 20 * kMillisecond;
  policy.initial_mtbf = 100 * kSecond;
  policy.min_interval = 1 * kMillisecond;
  AutonomicManager manager(kernel_, *engine, policy);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  manager.manage(pid);
  manager.start();
  kernel_.run_until(kernel_.now() + 100 * kMillisecond);
  const SimTime calm_interval = manager.current_interval();

  // A burst of failures 50ms apart slashes the MTBF estimate.
  for (int i = 0; i < 6; ++i) {
    kernel_.run_until(kernel_.now() + 50 * kMillisecond);
    manager.observe_failure();
  }
  EXPECT_LT(manager.mtbf_estimate(), policy.initial_mtbf);
  EXPECT_LT(manager.current_interval(), calm_interval);
}

TEST_F(AutonomicTest, CostEstimateTracksObservedCheckpoints) {
  auto engine = make_engine();
  AutonomicPolicy policy;
  policy.initial_interval = 10 * kMillisecond;
  AutonomicManager manager(kernel_, *engine, policy);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  manager.manage(pid);
  manager.start();
  kernel_.run_until(kernel_.now() + 50 * kMillisecond);
  EXPECT_GT(manager.cost_estimate(), 0u);
}

TEST_F(AutonomicTest, SuspendForMaintenanceAndResume) {
  auto engine = make_engine();
  AutonomicManager manager(kernel_, *engine, AutonomicPolicy{});
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  manager.manage(pid);
  run_steps(kernel_, pid, 3);

  ASSERT_TRUE(manager.suspend_for_maintenance());
  EXPECT_EQ(kernel_.process(pid).state, sim::TaskState::kStopped);
  // Its state is on stable storage: even if the node died now, the work is
  // recoverable.
  EXPECT_GE(engine->checkpoints_taken(pid), 1u);

  manager.resume_after_maintenance();
  const std::uint64_t before = kernel_.process(pid).stats.guest_iterations;
  run_steps(kernel_, pid, before + 3);
  EXPECT_GT(kernel_.process(pid).stats.guest_iterations, before);
}

TEST_F(AutonomicTest, SafePreemption) {
  auto engine = make_engine();
  AutonomicManager manager(kernel_, *engine, AutonomicPolicy{});
  const sim::Pid low = kernel_.spawn(sim::CounterGuest::kTypeName);
  manager.manage(low);
  run_steps(kernel_, low, 3);

  ASSERT_TRUE(manager.preempt(low));
  EXPECT_EQ(kernel_.process(low).state, sim::TaskState::kStopped);

  // The high-priority job now gets the whole machine.
  const sim::Pid high = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, high, 10);
  EXPECT_GE(kernel_.process(high).stats.guest_iterations, 10u);

  manager.resume_preempted(low);
  EXPECT_TRUE(kernel_.process(low).runnable());
}

TEST_F(AutonomicTest, DeadProcessesDropOut) {
  auto engine = make_engine();
  AutonomicPolicy policy;
  policy.initial_interval = 10 * kMillisecond;
  AutonomicManager manager(kernel_, *engine, policy);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  manager.manage(pid);
  manager.start();
  kernel_.run_until(kernel_.now() + 15 * kMillisecond);
  kernel_.terminate(kernel_.process(pid), 0);
  kernel_.run_until(kernel_.now() + 30 * kMillisecond);
  EXPECT_TRUE(manager.managed().empty());
}

TEST_F(AutonomicTest, StopCancelsTimers) {
  auto engine = make_engine();
  AutonomicPolicy policy;
  policy.initial_interval = 10 * kMillisecond;
  AutonomicManager manager(kernel_, *engine, policy);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  manager.manage(pid);
  manager.start();
  kernel_.run_until(kernel_.now() + 25 * kMillisecond);
  manager.stop();
  const std::uint64_t taken = engine->checkpoints_taken(pid);
  kernel_.run_until(kernel_.now() + 50 * kMillisecond);
  EXPECT_EQ(engine->checkpoints_taken(pid), taken);
}

}  // namespace
}  // namespace ckpt::core
