#include <gtest/gtest.h>

#include "core/capture.hpp"
#include "core/migrate.hpp"
#include "core/pod.hpp"
#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class PodTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  PodManager pods_;
};

TEST_F(PodTest, AdoptAssignsVirtualPidAndOverhead) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  Pod& pod = pods_.create_pod("web");
  const sim::Pid vpid = pods_.adopt(kernel_, pid, pod.id);
  EXPECT_GT(vpid, 0);
  EXPECT_EQ(pod.real_pid(vpid), pid);
  EXPECT_EQ(pod.virtual_pid(pid), vpid);
  EXPECT_EQ(kernel_.process(pid).syscall_extra_ns, pods_.translation_overhead());
}

TEST_F(PodTest, PodSyscallsCostMore) {
  const sim::Pid plain = kernel_.spawn(sim::FileLoggerGuest::kTypeName,
                                       sim::FileLoggerGuest::Config{}.encode());
  const sim::Pid podded = kernel_.spawn(sim::FileLoggerGuest::kTypeName,
                                        sim::FileLoggerGuest::Config{}.encode());
  Pod& pod = pods_.create_pod("p");
  pods_.adopt(kernel_, podded, pod.id);
  run_steps(kernel_, plain, 20);
  run_steps(kernel_, podded, 20);
  const auto& sp = kernel_.process(plain).stats;
  const auto& sq = kernel_.process(podded).stats;
  ASSERT_EQ(sp.guest_iterations, 20u);
  ASSERT_EQ(sq.guest_iterations, 20u);
  EXPECT_GT(sq.syscall_time, sp.syscall_time);  // the ZAP tax
}

TEST_F(PodTest, RestartInPodSurvivesPidConflict) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  const auto image =
      capture_kernel_level(kernel_, kernel_.process(pid), CaptureOptions{});

  // The original is still alive, so its pid is taken — a naive
  // original-pid restart must fail, the pod restart must succeed.
  RestartOptions strict;
  strict.restore_original_pid = true;
  strict.require_original_pid = true;
  EXPECT_FALSE(restart_from_image(kernel_, image, strict).ok);

  Pod& pod = pods_.create_pod("p");
  const RestartResult result = pods_.restart_in_pod(kernel_, image, pod.id);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(pod.real_pid(pid), result.pid);  // vpid == checkpointed pid
}

TEST_F(PodTest, RestartInPodRemapsConflictingPorts) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  sim::Process& proc = kernel_.process(pid);
  sim::UserApi api(kernel_, proc);
  const sim::Fd sock = api.sys_socket();
  ASSERT_TRUE(api.sys_bind(sock, 5555));
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});

  Pod& pod = pods_.create_pod("p");
  const RestartResult result = pods_.restart_in_pod(kernel_, image, pod.id);
  ASSERT_TRUE(result.ok);
  // Virtual port 5555 maps to some free real port (not 5555: still taken).
  ASSERT_EQ(pod.vport_to_real.count(5555), 1u);
  EXPECT_NE(pod.vport_to_real[5555], 5555);
  EXPECT_NE(kernel_.port_owner(pod.vport_to_real[5555]), sim::kNoPid);
}

class RestartEdgeTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
};

TEST_F(RestartEdgeTest, OriginalPidTakenFallsBackToFreshPidWithWarning) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  const auto image = capture_kernel_level(kernel_, kernel_.process(pid), CaptureOptions{});

  // The original is still alive, so its pid is taken.  Best-effort
  // restoration must come back on a fresh pid and say so.
  RestartOptions options;
  options.restore_original_pid = true;
  const RestartResult result = restart_from_image(kernel_, image, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.pid, pid);
  bool warned = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("pid") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "pid fallback must be surfaced as a warning";
}

TEST_F(RestartEdgeTest, RequireOriginalPidIsAHardFailure) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  const auto image = capture_kernel_level(kernel_, kernel_.process(pid), CaptureOptions{});

  RestartOptions strict;
  strict.restore_original_pid = true;
  strict.require_original_pid = true;
  const RestartResult result = restart_from_image(kernel_, image, strict);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());

  // Once the original dies, the same strict restart must restore its pid.
  kernel_.terminate(kernel_.process(pid), 0);
  kernel_.reap(pid);
  const RestartResult retry = restart_from_image(kernel_, image, strict);
  ASSERT_TRUE(retry.ok) << retry.error;
  EXPECT_EQ(retry.pid, pid);
}

TEST_F(RestartEdgeTest, PortRebindConflictIsAWarningNotAFailure) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  sim::Process& proc = kernel_.process(pid);
  sim::UserApi api(kernel_, proc);
  const sim::Fd sock = api.sys_socket();
  ASSERT_TRUE(api.sys_bind(sock, 6060));
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});

  // The original still owns port 6060, so the restarted copy cannot rebind.
  const RestartResult result = restart_from_image(kernel_, image, RestartOptions{});
  ASSERT_TRUE(result.ok) << result.error;
  bool warned = false;
  for (const std::string& warning : result.warnings) {
    if (warning.find("6060") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "port conflict must land in RestartResult::warnings";
  EXPECT_EQ(kernel_.port_owner(6060), pid);  // the original keeps the port
}

TEST_F(RestartEdgeTest, FreedPortRebindsSilently) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  sim::Process& proc = kernel_.process(pid);
  sim::UserApi api(kernel_, proc);
  const sim::Fd sock = api.sys_socket();
  ASSERT_TRUE(api.sys_bind(sock, 6061));
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});

  kernel_.terminate(proc, 0);
  kernel_.reap(pid);
  const RestartResult result = restart_from_image(kernel_, image, RestartOptions{});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.warnings.empty()) << result.warnings.front();
  EXPECT_EQ(kernel_.port_owner(6061), result.pid);
}

class MigrateTest : public SimTest {
 protected:
  sim::SimKernel source_{1, sim::CostModel{}, 1};
  sim::SimKernel destination_{1, sim::CostModel{}, 2};

  void SetUp() override {
    SimTest::SetUp();
    source_.hostname = "src";
    destination_.hostname = "dst";
  }
};

TEST_F(MigrateTest, ProcessMovesAndContinues) {
  const sim::Pid pid = source_.spawn(sim::CounterGuest::kTypeName);
  run_steps(source_, pid, 10);
  const std::uint64_t counter =
      sim::CounterGuest::read_counter(source_, source_.process(pid));

  const MigrationResult result = migrate_process(source_, destination_, pid);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(source_.find_process(pid), nullptr);  // gone from the source
  EXPECT_GT(result.bytes_transferred, 0u);

  sim::Process& moved = destination_.process(result.new_pid);
  EXPECT_EQ(sim::CounterGuest::read_counter(destination_, moved), counter);
  run_steps(destination_, result.new_pid, 5);
  EXPECT_GT(sim::CounterGuest::read_counter(destination_, moved), counter);
}

TEST_F(MigrateTest, NaiveMigrationFailsOnPidConflict) {
  // Fill the destination's pid space so the migrated pid is taken.
  const sim::Pid pid = source_.spawn(sim::CounterGuest::kTypeName);
  while (destination_.live_pids().size() < 4) {
    destination_.spawn(sim::CounterGuest::kTypeName);
  }
  ASSERT_TRUE(destination_.pid_in_use(pid));
  run_steps(source_, pid, 3);

  const MigrationResult result = migrate_process(source_, destination_, pid);
  EXPECT_FALSE(result.ok);
  // Failed migration must leave the original running at the source.
  ASSERT_NE(source_.find_process(pid), nullptr);
  EXPECT_TRUE(source_.process(pid).alive());
  run_steps(source_, pid, 6);
}

TEST_F(MigrateTest, PodMigrationSurvivesConflicts) {
  PodManager pods;
  const sim::Pid pid = source_.spawn(sim::CounterGuest::kTypeName);
  Pod& pod = pods.create_pod("p");
  pods.adopt(source_, pid, pod.id);
  while (destination_.live_pids().size() < 4) {
    destination_.spawn(sim::CounterGuest::kTypeName);
  }
  ASSERT_TRUE(destination_.pid_in_use(pid));
  run_steps(source_, pid, 5);

  MigrationOptions options;
  options.pods = &pods;
  options.pod = pod.id;
  const MigrationResult result = migrate_process(source_, destination_, pid, options);
  ASSERT_TRUE(result.ok) << result.error;
  // The pod preserves the virtual identity across the move.
  EXPECT_EQ(pod.real_pid(pid), result.new_pid);
  run_steps(destination_, result.new_pid, 5);
}

TEST_F(MigrateTest, MigrationChargesNetworkTransfer) {
  sim::WriterConfig config;
  config.array_bytes = 1024 * 1024;  // a meaty address space
  const sim::Pid pid = source_.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                                     sim::spawn_options_for_array(config.array_bytes));
  run_steps(source_, pid, 3);
  const SimTime before = destination_.now();
  const MigrationResult result = migrate_process(source_, destination_, pid);
  ASSERT_TRUE(result.ok);
  // ~1 MiB over a 100 MB/s link: at least ~10 simulated ms.
  EXPECT_GT(destination_.now() - before, 5 * kMillisecond);
}

}  // namespace
}  // namespace ckpt::core
