#include <gtest/gtest.h>

#include "core/capture.hpp"
#include "core/engine.hpp"
#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class CaptureTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};
};

TEST_F(CaptureTest, KernelCaptureRecordsAllState) {
  const sim::Pid pid = kernel_.spawn(sim::FileLoggerGuest::kTypeName,
                                     sim::FileLoggerGuest::Config{}.encode());
  run_steps(kernel_, pid, 5);
  sim::Process& proc = kernel_.process(pid);

  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});
  EXPECT_EQ(image.pid, pid);
  EXPECT_EQ(image.guest.type_name, sim::FileLoggerGuest::kTypeName);
  EXPECT_EQ(image.threads.size(), proc.threads.size());
  EXPECT_EQ(image.brk, proc.brk);
  ASSERT_FALSE(image.files.empty());
  EXPECT_EQ(image.files[0].path, "/data/app.log");
  EXPECT_GT(image.files[0].offset, 0u);
  // Code segment skipped by default, data/heap/stack captured.
  std::uint64_t code_pages = 0;
  for (const auto& seg : image.segments) {
    if (seg.vma.kind == sim::VmaKind::kCode) code_pages += seg.pages.size();
  }
  EXPECT_EQ(code_pages, 0u);
  EXPECT_GT(image.payload_bytes(), 0u);
}

TEST_F(CaptureTest, IncludeCodeSegmentGrowsImage) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  CaptureOptions skip, keep;
  keep.skip_code_segment = false;
  const auto small = capture_kernel_level(kernel_, proc, skip);
  const auto big = capture_kernel_level(kernel_, proc, keep);
  EXPECT_GT(big.payload_bytes(), small.payload_bytes());
}

TEST_F(CaptureTest, RestartResumesCounterExactly) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 20);
  sim::Process& proc = kernel_.process(pid);
  const std::uint64_t at_checkpoint = sim::CounterGuest::read_counter(kernel_, proc);
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});

  // The process "crashes" well past the checkpoint...
  run_steps(kernel_, pid, 40);
  kernel_.terminate(proc, 1);
  kernel_.reap(pid);

  // ...and is restarted from the image at the counter it had then.
  const RestartResult result = restart_from_image(kernel_, image);
  ASSERT_TRUE(result.ok) << result.error;
  sim::Process& revived = kernel_.process(result.pid);
  EXPECT_EQ(sim::CounterGuest::read_counter(kernel_, revived), at_checkpoint);

  // And it continues making progress from there.
  run_steps(kernel_, result.pid, 5);
  EXPECT_GT(sim::CounterGuest::read_counter(kernel_, revived), at_checkpoint);
}

TEST_F(CaptureTest, RestartPreservesRngStream) {
  // The sparse writer keeps its RNG state in guest memory; after restart the
  // write sequence must continue identically.  Run two kernels: one
  // uninterrupted, one checkpoint/restarted, and compare final memory.
  sim::WriterConfig config;
  config.array_bytes = 64 * 1024;
  config.seed = 99;
  auto opts = sim::spawn_options_for_array(config.array_bytes);

  sim::SimKernel control;
  const sim::Pid control_pid = control.spawn(sim::SparseWriterGuest::kTypeName,
                                             config.encode(), opts);
  run_steps(control, control_pid, 30);

  const sim::Pid pid =
      kernel_.spawn(sim::SparseWriterGuest::kTypeName, config.encode(), opts);
  run_steps(kernel_, pid, 15);
  sim::Process& proc = kernel_.process(pid);
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});
  kernel_.terminate(proc, 1);
  kernel_.reap(pid);
  const RestartResult result = restart_from_image(kernel_, image);
  ASSERT_TRUE(result.ok);
  // The restarted process's *stats* start from zero, but its guest state
  // resumes at iteration 15 — run 15 more steps for 30 total.
  run_steps(kernel_, result.pid, 15);

  sim::Process& a = control.process(control_pid);
  sim::Process& b = kernel_.process(result.pid);
  ASSERT_EQ(a.stats.guest_iterations, 30u);
  ASSERT_EQ(b.stats.guest_iterations, 15u);
  // Compare the full heap contents byte for byte.
  const sim::Vma* heap_a = a.aspace->find_vma(a.heap_base);
  ASSERT_NE(heap_a, nullptr);
  for (sim::PageNum p = heap_a->first_page; p < heap_a->first_page + heap_a->page_count;
       ++p) {
    const auto da = a.aspace->page_data(p);
    const auto db = b.aspace->page_data(p);
    ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin()))
        << "heap divergence at page " << p;
  }
}

TEST_F(CaptureTest, RestartRestoresFileStateAndOffsets) {
  sim::FileLoggerGuest::Config config;
  const sim::Pid pid =
      kernel_.spawn(sim::FileLoggerGuest::kTypeName, config.encode());
  run_steps(kernel_, pid, 10);
  sim::Process& proc = kernel_.process(pid);
  CaptureOptions options;
  options.save_file_contents = true;
  const auto image = capture_kernel_level(kernel_, proc, options);
  const std::uint64_t offset_at_ckpt = image.files[0].offset;

  // Run further (file keeps growing), then crash and restart.
  run_steps(kernel_, pid, 20);
  kernel_.terminate(proc, 1);
  kernel_.reap(pid);

  const RestartResult result = restart_from_image(kernel_, image);
  ASSERT_TRUE(result.ok);
  sim::Process& revived = kernel_.process(result.pid);
  const auto ofd = revived.fds.get(image.files[0].fd);
  ASSERT_NE(ofd, nullptr);
  EXPECT_EQ(ofd->offset, offset_at_ckpt);
  // File contents rolled back to checkpoint time (contents were saved).
  EXPECT_EQ(ofd->file->data.size(), offset_at_ckpt);
}

TEST_F(CaptureTest, DeletedFileDetectedAndResurrected) {
  sim::FileLoggerGuest::Config config;
  const sim::Pid pid = kernel_.spawn(sim::FileLoggerGuest::kTypeName, config.encode());
  run_steps(kernel_, pid, 5);
  sim::Process& proc = kernel_.process(pid);
  // Unlink while open (the UCLiK scenario).
  kernel_.vfs().unlink("/data/app.log");
  CaptureOptions options;
  options.save_file_contents = true;
  const auto image = capture_kernel_level(kernel_, proc, options);
  ASSERT_FALSE(image.files.empty());
  EXPECT_TRUE(image.files[0].was_deleted);

  kernel_.terminate(proc, 1);
  kernel_.reap(pid);
  const RestartResult result = restart_from_image(kernel_, image);
  ASSERT_TRUE(result.ok);
  // Restart warns about the deletion and recreates content from the image.
  bool warned = false;
  for (const auto& w : result.warnings) warned |= w.find("deleted") != std::string::npos;
  EXPECT_TRUE(warned);
  EXPECT_TRUE(kernel_.vfs().exists("/data/app.log"));
}

TEST_F(CaptureTest, PidConflictHandling) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  const auto image =
      capture_kernel_level(kernel_, kernel_.process(pid), CaptureOptions{});

  // Original still alive: strict pid restore must fail...
  RestartOptions strict;
  strict.restore_original_pid = true;
  strict.require_original_pid = true;
  EXPECT_FALSE(restart_from_image(kernel_, image, strict).ok);

  // ...lenient restore succeeds under a new pid with a warning.
  RestartOptions lenient;
  lenient.restore_original_pid = true;
  const RestartResult result = restart_from_image(kernel_, image, lenient);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.pid, pid);
  EXPECT_FALSE(result.warnings.empty());

  // After the original is gone, the original pid is restorable.
  kernel_.terminate(kernel_.process(pid), 0);
  kernel_.reap(pid);
  const RestartResult original = restart_from_image(kernel_, image, strict);
  ASSERT_TRUE(original.ok);
  EXPECT_EQ(original.pid, pid);
}

TEST_F(CaptureTest, PortConflictWarns) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  sim::Process& proc = kernel_.process(pid);
  sim::UserApi api(kernel_, proc);
  const sim::Fd sock = api.sys_socket();
  ASSERT_TRUE(api.sys_bind(sock, 7777));
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});

  // Original keeps the port; the clone cannot bind it.
  const RestartResult result = restart_from_image(kernel_, image);
  ASSERT_TRUE(result.ok);
  bool warned = false;
  for (const auto& w : result.warnings) warned |= w.find("port") != std::string::npos;
  EXPECT_TRUE(warned);
}

TEST_F(CaptureTest, UserLevelCaptureMatchesKernelCapture) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 10);
  sim::Process& proc = kernel_.process(pid);

  UserLevelRuntime runtime;
  runtime.install(kernel_, proc, /*via_preload=*/false);
  sim::UserApi api(kernel_, proc);
  const auto user_image = runtime.capture(api, CaptureOptions{});
  const auto kernel_image = capture_kernel_level(kernel_, proc, CaptureOptions{});

  EXPECT_TRUE(images_equal_memory(user_image, kernel_image));
  EXPECT_EQ(user_image.brk, kernel_image.brk);
}

TEST_F(CaptureTest, UserLevelCaptureIsCostlier) {
  // Same state, two capture paths: the user-level one must burn more
  // syscalls — claim C1's mechanism in miniature.
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  sim::Process& proc = kernel_.process(pid);
  UserLevelRuntime runtime;
  runtime.install(kernel_, proc, false);

  const std::uint64_t syscalls_before = proc.stats.syscalls;
  sim::UserApi api(kernel_, proc);
  (void)runtime.capture(api, CaptureOptions{});
  const std::uint64_t user_syscalls = proc.stats.syscalls - syscalls_before;

  const std::uint64_t before_kernel = proc.stats.syscalls;
  (void)capture_kernel_level(kernel_, proc, CaptureOptions{});
  const std::uint64_t kernel_syscalls = proc.stats.syscalls - before_kernel;

  EXPECT_GT(user_syscalls, 4u);      // maps walk + sbrk + sigpending + ...
  EXPECT_EQ(kernel_syscalls, 0u);    // direct task-structure access
}

TEST_F(CaptureTest, UserLevelShadowFdsMissPreexistingDescriptors) {
  // A descriptor opened *before* the library was installed is invisible to
  // user-level capture — the transparency failure of §3.
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  sim::Process& proc = kernel_.process(pid);
  sim::UserApi api(kernel_, proc);
  const sim::Fd early = api.sys_open("/data/early.txt", sim::kOpenCreate | sim::kOpenWrite);
  ASSERT_GE(early, 0);

  UserLevelRuntime runtime;
  runtime.install(kernel_, proc, false);
  const sim::Fd late = api.sys_open("/data/late.txt", sim::kOpenCreate | sim::kOpenWrite);
  ASSERT_GE(late, 0);

  const auto user_image = runtime.capture(api, CaptureOptions{});
  ASSERT_EQ(user_image.files.size(), 1u);
  EXPECT_EQ(user_image.files[0].path, "/data/late.txt");

  const auto kernel_image = capture_kernel_level(kernel_, proc, CaptureOptions{});
  EXPECT_EQ(kernel_image.files.size(), 2u);  // the kernel sees everything
}

TEST_F(CaptureTest, PagedSessionCopiesIncrementally) {
  sim::WriterConfig config;
  config.array_bytes = 128 * 1024;
  const sim::Pid pid = kernel_.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                                     sim::spawn_options_for_array(config.array_bytes));
  run_steps(kernel_, pid, 3);
  sim::Process& proc = kernel_.process(pid);

  PagedCaptureSession session(kernel_, proc, CaptureOptions{});
  EXPECT_GT(session.pages_total(), 32u);
  EXPECT_FALSE(session.copy_some(8));
  EXPECT_EQ(session.pages_copied(), 8u);
  while (!session.copy_some(8)) {
  }
  const auto image = session.take_image();
  EXPECT_EQ(image.page_count(), session.pages_total());
}

TEST_F(CaptureTest, MultithreadedRegistersAllCaptured) {
  sim::SpawnOptions options;
  options.thread_count = 3;
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName, {}, options);
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  proc.threads[1].regs.pc = 0x1234;
  proc.threads[2].regs.sp = 0x5678;
  const auto image = capture_kernel_level(kernel_, proc, CaptureOptions{});
  ASSERT_EQ(image.threads.size(), 3u);
  EXPECT_EQ(image.threads[1].regs.pc, 0x1234u);
  EXPECT_EQ(image.threads[2].regs.sp, 0x5678u);

  kernel_.terminate(proc, 0);
  kernel_.reap(pid);
  const RestartResult result = restart_from_image(kernel_, image);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(kernel_.process(result.pid).threads.size(), 3u);
}

}  // namespace
}  // namespace ckpt::core
