#include <gtest/gtest.h>

#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::sim {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class KernelTest : public SimTest {};

TEST_F(KernelTest, SpawnAndRunCounter) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  ckpt::test::run_steps(kernel, pid, 10);
  Process& proc = kernel.process(pid);
  EXPECT_GE(CounterGuest::read_counter(kernel, proc), 10u);
  EXPECT_GE(proc.stats.guest_iterations, 10u);
}

TEST_F(KernelTest, ClockAdvances) {
  SimKernel kernel;
  kernel.spawn(CounterGuest::kTypeName);
  const SimTime before = kernel.now();
  kernel.run_until(before + 10 * kMillisecond);
  EXPECT_GE(kernel.now(), before + 10 * kMillisecond);
}

TEST_F(KernelTest, ProcessExitBecomesZombieThenReaped) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  kernel.terminate(proc, 3);
  EXPECT_EQ(proc.state, TaskState::kZombie);
  EXPECT_EQ(proc.exit_code, 3);
  kernel.reap(pid);
  EXPECT_EQ(kernel.find_process(pid), nullptr);
}

TEST_F(KernelTest, SigkillImmediatelyTerminates) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  EXPECT_TRUE(kernel.send_signal(pid, kSigKill));
  EXPECT_EQ(kernel.process(pid).state, TaskState::kZombie);
}

TEST_F(KernelTest, DefaultTermSignalDeferredUntilScheduled) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  kernel.send_signal(pid, kSigTerm);
  // Not yet delivered: the target has not run since the signal was sent.
  EXPECT_TRUE(kernel.process(pid).alive());
  kernel.run_until(kernel.now() + 2 * kMillisecond);
  EXPECT_FALSE(kernel.find_process(pid)->alive());
}

TEST_F(KernelTest, StopAndContinue) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  run_steps(kernel, pid, 3);
  Process& proc = kernel.process(pid);
  kernel.stop_process(proc);
  const std::uint64_t frozen_iters = proc.stats.guest_iterations;
  kernel.run_until(kernel.now() + 10 * kMillisecond);
  EXPECT_EQ(proc.stats.guest_iterations, frozen_iters);  // made no progress
  kernel.send_signal(pid, kSigCont);
  run_steps(kernel, pid, frozen_iters + 3);
  EXPECT_GT(proc.stats.guest_iterations, frozen_iters);
}

TEST_F(KernelTest, IgnoredSignalHasNoEffect) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  kernel.process(pid).signals.disposition[kSigUsr1] = SignalDisposition::kIgnore;
  kernel.send_signal(pid, kSigUsr1);
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_TRUE(kernel.process(pid).alive());
}

TEST_F(KernelTest, KernelSignalActionRunsInKernelMode) {
  SimKernel kernel;
  int fired = 0;
  kernel.register_kernel_signal(
      kSigCkpt, [&fired](SimKernel&, Process&) { ++fired; }, nullptr);
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  kernel.send_signal(pid, kSigCkpt);
  EXPECT_EQ(fired, 0);  // deferred to the next kernel->user transition
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(kernel.process(pid).alive());  // action replaced default terminate
}

TEST_F(KernelTest, ForkCreatesCowChild) {
  SimKernel kernel;
  const Pid parent_pid = kernel.spawn(CounterGuest::kTypeName);
  run_steps(kernel, parent_pid, 5);
  Process& parent = kernel.process(parent_pid);
  const std::uint64_t counter = CounterGuest::read_counter(kernel, parent);

  const Pid child_pid = kernel.fork_process(parent, /*freeze_child=*/true);
  Process& child = kernel.process(child_pid);
  EXPECT_EQ(child.state, TaskState::kStopped);
  EXPECT_EQ(CounterGuest::read_counter(kernel, child), counter);

  // Parent keeps running; the frozen child's memory must not change.
  run_steps(kernel, parent_pid, counter + 10);
  EXPECT_EQ(CounterGuest::read_counter(kernel, child), counter);
  EXPECT_GT(CounterGuest::read_counter(kernel, parent), counter);
  EXPECT_GT(parent.stats.cow_faults, 0u);  // the COW price of the fork
}

TEST_F(KernelTest, GuestForkChildRunsIndependently) {
  SimKernel kernel;
  const Pid parent_pid = kernel.spawn(CounterGuest::kTypeName);
  run_steps(kernel, parent_pid, 2);
  Process& parent = kernel.process(parent_pid);
  const Pid child_pid = kernel.sys_fork(parent);
  Process& child = kernel.process(child_pid);
  EXPECT_EQ(child.threads.front().regs.gpr[7], 1u);  // "I am the child"
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_GT(CounterGuest::read_counter(kernel, child), 0u);
}

TEST_F(KernelTest, FifoPreemptsTimeshare) {
  SimKernel kernel(/*ncpus=*/1);
  const Pid ts_pid = kernel.spawn(CounterGuest::kTypeName);
  bool kthread_ran = false;
  const Pid kt_pid = kernel.spawn_kernel_thread(
      "rt",
      [&kthread_ran](SimKernel&) {
        kthread_ran = true;
        return KStepResult::kSleep;
      },
      SchedParams{SchedClass::kFifo, 50, 0, 0});
  kernel.wake(kt_pid);
  // The very next round must run the FIFO thread, not the counter.
  const std::uint64_t iters_before = kernel.process(ts_pid).stats.guest_iterations;
  kernel.run_round();
  EXPECT_TRUE(kthread_ran);
  EXPECT_EQ(kernel.process(ts_pid).stats.guest_iterations, iters_before);
}

TEST_F(KernelTest, TimeshareIsFair) {
  SimKernel kernel;
  const Pid a = kernel.spawn(CounterGuest::kTypeName);
  const Pid b = kernel.spawn(CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 50 * kMillisecond);
  const auto ia = kernel.process(a).stats.guest_iterations;
  const auto ib = kernel.process(b).stats.guest_iterations;
  ASSERT_GT(ia, 0u);
  ASSERT_GT(ib, 0u);
  const double ratio = static_cast<double>(ia) / static_cast<double>(ib);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST_F(KernelTest, SmpRunsTasksInParallel) {
  SimKernel uni(1), smp(4);
  std::vector<Pid> uni_pids, smp_pids;
  for (int i = 0; i < 4; ++i) {
    uni_pids.push_back(uni.spawn(CounterGuest::kTypeName));
    smp_pids.push_back(smp.spawn(CounterGuest::kTypeName));
  }
  uni.run_until(20 * kMillisecond);
  smp.run_until(20 * kMillisecond);
  std::uint64_t uni_total = 0, smp_total = 0;
  for (Pid pid : uni_pids) uni_total += uni.process(pid).stats.guest_iterations;
  for (Pid pid : smp_pids) smp_total += smp.process(pid).stats.guest_iterations;
  EXPECT_GT(smp_total, 2 * uni_total);  // 4 CPUs ≈ 4x throughput
}

TEST_F(KernelTest, AlarmDeliversSigalrm) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  int alarms = 0;
  proc.signals.disposition[kSigAlrm] = SignalDisposition::kHandler;
  proc.library_handlers[kSigAlrm] = [&alarms](SimKernel&, Process&, Signal) { ++alarms; };
  UserApi api(kernel, proc);
  api.sys_alarm(5 * kMillisecond);
  kernel.run_until(kernel.now() + 20 * kMillisecond);
  EXPECT_EQ(alarms, 1);  // one-shot
}

TEST_F(KernelTest, ItimerDeliversPeriodically) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  int alarms = 0;
  proc.signals.disposition[kSigAlrm] = SignalDisposition::kHandler;
  proc.library_handlers[kSigAlrm] = [&alarms](SimKernel&, Process&, Signal) { ++alarms; };
  UserApi api(kernel, proc);
  api.sys_setitimer(5 * kMillisecond);
  kernel.run_until(kernel.now() + 26 * kMillisecond);
  EXPECT_GE(alarms, 3);
}

TEST_F(KernelTest, ModuleLoadUnloadCleansRegistrations) {
  SimKernel kernel;
  KernelModule& module = kernel.load_module("testmod");
  kernel.register_syscall(
      "test_call", [](SimKernel&, Process&, std::uint64_t, std::uint64_t,
                      std::uint64_t) -> std::int64_t { return 42; },
      &module);
  kernel.register_kernel_signal(kSigCkpt, [](SimKernel&, Process&) {}, &module);
  EXPECT_TRUE(kernel.has_syscall("test_call"));
  EXPECT_TRUE(kernel.has_kernel_signal(kSigCkpt));
  kernel.unload_module("testmod");
  EXPECT_FALSE(kernel.has_syscall("test_call"));
  EXPECT_FALSE(kernel.has_kernel_signal(kSigCkpt));
  EXPECT_FALSE(kernel.module_loaded("testmod"));
}

TEST_F(KernelTest, DoubleModuleLoadThrows) {
  SimKernel kernel;
  kernel.load_module("m");
  EXPECT_THROW(kernel.load_module("m"), std::runtime_error);
}

TEST_F(KernelTest, PortBindingConflicts) {
  SimKernel kernel;
  EXPECT_TRUE(kernel.bind_port(8080, 10));
  EXPECT_FALSE(kernel.bind_port(8080, 11));
  EXPECT_EQ(kernel.port_owner(8080), 10);
  kernel.release_port(8080);
  EXPECT_TRUE(kernel.bind_port(8080, 11));
}

TEST_F(KernelTest, TerminateReleasesPorts) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  UserApi api(kernel, proc);
  const Fd sock = api.sys_socket();
  ASSERT_TRUE(api.sys_bind(sock, 9000));
  kernel.terminate(proc, 0);
  EXPECT_EQ(kernel.port_owner(9000), kNoPid);
}

TEST_F(KernelTest, UnmappedStoreKillsProcess) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  const std::byte data[8]{};
  EXPECT_FALSE(kernel.user_store(proc, 0xDEAD0000, data));
  EXPECT_FALSE(proc.alive());
  EXPECT_EQ(proc.exit_code, 128 + kSigSegv);
}

TEST_F(KernelTest, DesiredPidRespectedAndConflictsThrow) {
  SimKernel kernel;
  const Pid pid = kernel.create_restored_process("x", GuestImage{"counter", {}}, 77);
  EXPECT_EQ(pid, 77);
  EXPECT_THROW(kernel.create_restored_process("y", GuestImage{"counter", {}}, 77),
               std::runtime_error);
}

}  // namespace
}  // namespace ckpt::sim
