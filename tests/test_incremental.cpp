#include <gtest/gtest.h>

#include "core/capture.hpp"
#include "core/incremental.hpp"
#include "storage/chain.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class TrackerTest : public SimTest {
 protected:
  sim::SimKernel kernel_;

  sim::Pid spawn_sparse(std::uint64_t array_bytes = 256 * 1024, double hot = 0.05) {
    sim::WriterConfig config;
    config.array_bytes = array_bytes;
    config.working_set_fraction = hot;
    return kernel_.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                         sim::spawn_options_for_array(array_bytes));
  }
};

TEST_F(TrackerTest, KernelWpTrackerFindsDirtyPages) {
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);

  KernelWpTracker tracker;
  tracker.begin_interval(kernel_, proc);
  run_steps(kernel_, pid, 10);
  const auto dirty = tracker.collect(kernel_, proc);
  EXPECT_GT(dirty.size(), 0u);
  EXPECT_GT(tracker.faults_taken(), 0u);
  // Sparse workload: far fewer dirty pages than total pages.
  const std::uint64_t total_pages = proc.aspace->mapped_bytes() / sim::kPageSize;
  EXPECT_LT(dirty.size(), total_pages / 2);
  tracker.detach(proc);
}

TEST_F(TrackerTest, KernelTrackerFaultsOnlyOnFirstTouch) {
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  KernelWpTracker tracker;
  tracker.begin_interval(kernel_, proc);
  run_steps(kernel_, pid, 20);
  const auto dirty = tracker.collect(kernel_, proc);
  // One fault per distinct page, not per write.
  EXPECT_EQ(tracker.faults_taken(), dirty.size());
  tracker.detach(proc);
}

TEST_F(TrackerTest, UserWpTrackerAgreesWithKernelTracker) {
  // Two identical workloads, two tracking flavours: the dirty sets must
  // match; the costs must not (user pays signals + mprotect syscalls).
  sim::WriterConfig config;
  config.array_bytes = 128 * 1024;
  config.working_set_fraction = 0.1;
  config.seed = 5;
  auto opts = sim::spawn_options_for_array(config.array_bytes);

  sim::SimKernel k1, k2;
  const sim::Pid p1 = k1.spawn(sim::SparseWriterGuest::kTypeName, config.encode(), opts);
  const sim::Pid p2 = k2.spawn(sim::SparseWriterGuest::kTypeName, config.encode(), opts);
  run_steps(k1, p1, 2);
  run_steps(k2, p2, 2);

  KernelWpTracker kernel_tracker;
  UserWpTracker user_tracker;
  kernel_tracker.begin_interval(k1, k1.process(p1));
  user_tracker.begin_interval(k2, k2.process(p2));
  run_steps(k1, p1, 12);
  run_steps(k2, p2, 12);

  auto kd = kernel_tracker.collect(k1, k1.process(p1));
  auto ud = user_tracker.collect(k2, k2.process(p2));
  ASSERT_EQ(kd.size(), ud.size());
  for (std::size_t i = 0; i < kd.size(); ++i) EXPECT_EQ(kd[i].page, ud[i].page);

  // The user-level flavour pays signal deliveries; the kernel one none.
  EXPECT_GT(user_tracker.signals_taken(), 0u);
  EXPECT_GT(k2.process(p2).stats.signal_time, 0u);
  EXPECT_EQ(k1.process(p1).stats.signal_time, 0u);
  // And the user flavour burned more per-process time on tracking.
  EXPECT_GT(k2.process(p2).stats.fault_time + k2.process(p2).stats.signal_time,
            k1.process(p1).stats.fault_time);
}

TEST_F(TrackerTest, PteScanTrackerMatchesWpTracker) {
  sim::WriterConfig config;
  config.array_bytes = 128 * 1024;
  config.seed = 11;
  auto opts = sim::spawn_options_for_array(config.array_bytes);
  sim::SimKernel k1, k2;
  const sim::Pid p1 = k1.spawn(sim::SparseWriterGuest::kTypeName, config.encode(), opts);
  const sim::Pid p2 = k2.spawn(sim::SparseWriterGuest::kTypeName, config.encode(), opts);
  run_steps(k1, p1, 2);
  run_steps(k2, p2, 2);

  KernelWpTracker wp;
  PteScanTracker scan;
  wp.begin_interval(k1, k1.process(p1));
  scan.begin_interval(k2, k2.process(p2));
  run_steps(k1, p1, 10);
  run_steps(k2, p2, 10);
  auto wd = wp.collect(k1, k1.process(p1));
  auto sd = scan.collect(k2, k2.process(p2));

  std::set<sim::PageNum> wp_pages, scan_pages;
  for (const auto& r : wd) wp_pages.insert(r.page);
  for (const auto& r : sd) scan_pages.insert(r.page);
  // The PTE scan sees the same data pages; it may additionally report pages
  // the tracker-protected flavour treats as metadata.  Require the wp set
  // to be a subset of the scan set and sizes to be close.
  for (sim::PageNum p : wp_pages) EXPECT_TRUE(scan_pages.count(p)) << p;
}

TEST_F(TrackerTest, ProbabilisticTrackerFindsBlocks) {
  const sim::Pid pid = spawn_sparse(128 * 1024, 0.05);
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);

  ProbabilisticTracker tracker(/*block_bytes=*/512, /*signature_bits=*/64);
  tracker.begin_interval(kernel_, proc);
  run_steps(kernel_, pid, 6);
  const auto dirty = tracker.collect(kernel_, proc);
  ASSERT_GT(dirty.size(), 0u);
  std::uint64_t block_bytes = 0;
  std::set<sim::PageNum> pages;
  for (const auto& r : dirty) {
    EXPECT_EQ(r.length, 512u);
    block_bytes += r.length;
    pages.insert(r.page);
  }
  // Block granularity beats page granularity on volume.
  EXPECT_LT(block_bytes, pages.size() * sim::kPageSize);
}

TEST_F(TrackerTest, ProbabilisticRejectsBadBlockSize) {
  EXPECT_THROW(ProbabilisticTracker(1000, 64), std::invalid_argument);
  EXPECT_THROW(ProbabilisticTracker(1024, 0), std::invalid_argument);
  EXPECT_THROW(ProbabilisticTracker(1024, 65), std::invalid_argument);
}

TEST_F(TrackerTest, ProbabilisticFalseCleanProbabilityShrinksWithBits) {
  ProbabilisticTracker small(1024, 8), big(1024, 32);
  EXPECT_GT(small.false_clean_probability(), big.false_clean_probability());
  EXPECT_EQ(ProbabilisticTracker(1024, 64).false_clean_probability(), 0.0);
}

TEST_F(TrackerTest, ProbabilisticSignatureMemoryScalesInverselyWithBlock) {
  const sim::Pid pid = spawn_sparse(128 * 1024);
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  ProbabilisticTracker fine(256, 64), coarse(4096, 64);
  fine.begin_interval(kernel_, proc);
  coarse.begin_interval(kernel_, proc);
  EXPECT_GT(fine.signature_bytes(), coarse.signature_bytes());
}

TEST_F(TrackerTest, AdaptiveTrackerAdjustsBlockSizes) {
  // Dense writer => high dirty density => block size should coarsen.
  sim::WriterConfig config;
  config.array_bytes = 64 * 1024;
  config.writes_per_step = 256;
  const sim::Pid pid = kernel_.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                                     sim::spawn_options_for_array(config.array_bytes));
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);

  AdaptiveBlockTracker tracker(/*initial=*/1024, /*min=*/128, /*max=*/4096);
  const sim::Vma* heap = proc.aspace->find_vma(proc.heap_base);
  ASSERT_NE(heap, nullptr);
  const std::uint32_t initial = tracker.block_size_for(heap->first_page);

  for (int round = 0; round < 4; ++round) {
    tracker.begin_interval(kernel_, proc);
    run_steps(kernel_, pid, proc.stats.guest_iterations + 8);
    tracker.collect(kernel_, proc);
  }
  EXPECT_GT(tracker.block_size_for(heap->first_page), initial);
}

TEST_F(TrackerTest, AdaptiveTrackerRefinesOnSparseRegions) {
  sim::WriterConfig config;
  config.array_bytes = 256 * 1024;
  config.writes_per_step = 2;
  config.working_set_fraction = 0.01;
  const sim::Pid pid = kernel_.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                     sim::spawn_options_for_array(config.array_bytes));
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);

  AdaptiveBlockTracker tracker(1024, 128, 4096);
  const sim::Vma* heap = proc.aspace->find_vma(proc.heap_base);
  for (int round = 0; round < 4; ++round) {
    tracker.begin_interval(kernel_, proc);
    run_steps(kernel_, pid, proc.stats.guest_iterations + 4);
    tracker.collect(kernel_, proc);
  }
  EXPECT_LT(tracker.block_size_for(heap->first_page), 1024u);
}

// The central incremental-correctness property: a full image overlaid with
// tracker-selected deltas must equal a fresh full capture, for every
// tracker flavour.
class DeltaEquivalence : public SimTest,
                         public ::testing::WithParamInterface<const char*> {
 protected:
  std::unique_ptr<DirtyTracker> make_tracker(const std::string& name) {
    if (name == "kernel-wp") return std::make_unique<KernelWpTracker>();
    if (name == "user-wp") return std::make_unique<UserWpTracker>();
    if (name == "pte-scan") return std::make_unique<PteScanTracker>();
    if (name == "probabilistic") return std::make_unique<ProbabilisticTracker>(512, 64);
    if (name == "adaptive-block")
      return std::make_unique<AdaptiveBlockTracker>(1024, 128, 4096);
    throw std::logic_error("unknown tracker");
  }
};

TEST_P(DeltaEquivalence, FullPlusDeltasEqualsDirectCapture) {
  sim::SimKernel kernel;
  sim::WriterConfig config;
  config.array_bytes = 128 * 1024;
  config.working_set_fraction = 0.2;
  const sim::Pid pid = kernel.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                    sim::spawn_options_for_array(config.array_bytes));
  run_steps(kernel, pid, 3);
  sim::Process& proc = kernel.process(pid);

  storage::LocalDiskBackend backend{sim::CostModel{}};
  storage::CheckpointChain chain(&backend);
  auto tracker = make_tracker(GetParam());

  // Full checkpoint, then three incremental rounds.
  chain.append(capture_kernel_level(kernel, proc, CaptureOptions{}), nullptr);
  tracker->begin_interval(kernel, proc);
  for (int round = 0; round < 3; ++round) {
    run_steps(kernel, pid, proc.stats.guest_iterations + 7);
    CaptureOptions options;
    options.ranges = tracker->collect(kernel, proc);
    storage::CheckpointImage delta = capture_kernel_level(kernel, proc, options);
    delta.kind = storage::ImageKind::kIncremental;
    chain.append(std::move(delta), nullptr);
    tracker->begin_interval(kernel, proc);
  }
  tracker->detach(proc);

  // Ground truth: capture everything right now.
  const auto truth = capture_kernel_level(kernel, proc, CaptureOptions{});
  const auto merged = chain.reconstruct(nullptr);
  ASSERT_TRUE(merged.has_value());
  EXPECT_TRUE(images_equal_memory(*merged, truth))
      << "tracker " << GetParam() << " lost an update";
}

INSTANTIATE_TEST_SUITE_P(AllTrackers, DeltaEquivalence,
                         ::testing::Values("kernel-wp", "user-wp", "pte-scan",
                                           "probabilistic", "adaptive-block"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ckpt::core
