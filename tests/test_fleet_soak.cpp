// Fleet torture soak (label `fleet`): a 500+-node fleet under combined
// stochastic fail-stop (exponential AND Weibull infant-mortality models,
// never-repaired), detector false-suspicions and storage faults must
// complete with zero data-loss-with-intact-replica violations, every
// confirmed-dead slot replaced from the spare pool and re-seeded to a
// verified-restorable image — and the whole thing byte-identical for any
// worker count.
#include <gtest/gtest.h>

#include "cluster/fleet.hpp"
#include "obs/observer.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

class FleetSoak : public SimTest {};

FleetTortureOptions soak_torture() {
  FleetTortureOptions torture;
  // Exponential + Weibull superposition.  Weibull shape 0.7 front-loads
  // failures (infant mortality), so its mean must be read against the short
  // soak horizon: ~5% of the fleet fails in the first 10 simulated seconds.
  torture.failure_models.push_back(
      {FailureModel::Kind::kExponential, 300 * kSecond, 0.7, 0, 101});
  torture.failure_models.push_back(
      {FailureModel::Kind::kWeibull, 900 * kSecond, 0.7, 0, 202});
  torture.heartbeat_drop_per_window = 0.0005;
  torture.heartbeat_drop_beats = 6;
  torture.storage_fault_per_window = 0.3;
  return torture;
}

TEST_F(FleetSoak, FiveHundredNodeTortureSoakHoldsEveryInvariant) {
  FleetOptions options;
  options.active_nodes = 520;
  options.spare_nodes = 72;
  options.shards = 16;
  options.seed = 77;
  options.policy.initial_interval = 4 * options.window;
  options.policy.initial_mtbf = 10 * kSecond;
  options.guest_steps_min = 1;
  options.guest_steps_max = 3;
  options.array_bytes = 4 * 1024;

  FleetManager fleet(options);
  fleet.run(3);  // every slot commits before the faults start
  ASSERT_EQ(fleet.report().commits_failed, 0u);
  ASSERT_GT(fleet.report().commits_ok, 0u);

  fleet.arm_torture(soak_torture());
  const FleetReport report = fleet.run(40);
  SCOPED_TRACE(report.summary());

  // The storm actually happened.
  EXPECT_GT(report.failures_injected, 10u);
  EXPECT_GT(report.confirmed_dead, 10u);
  EXPECT_GT(report.storage_faults_injected, 5u);
  EXPECT_GT(report.heartbeats_suppressed, 0u);

  // THE gates: nothing recoverable was lost, every replacement re-seeded
  // to an image that byte-verified against the restored process, and no
  // slot was left waiting.
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.data_loss_with_intact_replica, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.unrecovered, 0u);
  EXPECT_EQ(report.pending_at_end, 0u);
  EXPECT_GT(report.replacements, 0u);
  EXPECT_EQ(report.replacements, report.reseeds_from_image + report.cold_starts);
  EXPECT_EQ(report.cold_starts, 0u);  // warm-up committed everywhere

  // The fleet kept making durable progress throughout.
  EXPECT_GT(report.commits_ok, 1000u);
  EXPECT_GT(report.group_commits, 0u);
  EXPECT_GT(report.durable_bytes, 0u);
}

TEST_F(FleetSoak, WorkerCountInvarianceAtScale) {
  struct Outcome {
    FleetReport report;
    std::string rollup;
    std::string ledger;
    std::map<int, std::string> post_mortems;
  };
  auto run_with = [](std::uint32_t workers, obs::Observer& observer) {
    FleetOptions options;
    options.active_nodes = 128;
    options.spare_nodes = 16;
    options.shards = 8;
    options.seed = 55;
    options.policy.initial_interval = 2 * options.window;
    options.policy.initial_mtbf = 10 * kSecond;
    options.guest_steps_min = 1;
    options.guest_steps_max = 3;
    options.array_bytes = 4 * 1024;
    options.workers = workers;
    options.observer = &observer;
    FleetManager fleet(options);
    FleetTortureOptions torture = soak_torture();
    torture.failure_models[0].mtbf = 60 * kSecond;
    torture.failure_models[1].mtbf = 60 * kSecond;
    fleet.arm_torture(torture);
    Outcome outcome;
    outcome.report = fleet.run(24);
    outcome.rollup = fleet.telemetry().rollup_json("node.commit_latency_ns");
    outcome.ledger = fleet.accountant().table();
    outcome.post_mortems = fleet.post_mortems();
    return outcome;
  };

  obs::Observer obs1;
  obs::Observer obs8;
  const Outcome o1 = run_with(1, obs1);
  const Outcome o8 = run_with(8, obs8);
  const FleetReport& r1 = o1.report;
  const FleetReport& r8 = o8.report;

  EXPECT_GT(r1.replacements, 0u);
  EXPECT_TRUE(r1 == r8);
  EXPECT_EQ(r1.digest(), r8.digest());
  EXPECT_EQ(obs1.metrics().snapshot_json(), obs8.metrics().snapshot_json());
  EXPECT_EQ(obs1.trace().export_chrome_json(), obs8.trace().export_chrome_json());

  // The fleet observability surfaces are part of the determinism contract
  // too: telemetry rollups, the overhead ledger, and every journal-recovered
  // post-mortem must render byte-identically for any worker count.
  EXPECT_GT(r1.flight_records_persisted, 0u);
  EXPECT_GT(r1.post_mortems, 0u);
  ASSERT_FALSE(o1.post_mortems.empty());
  EXPECT_EQ(o1.rollup, o8.rollup);
  EXPECT_EQ(o1.ledger, o8.ledger);
  EXPECT_EQ(o1.post_mortems, o8.post_mortems);
  // Dead slots got a black box recovered from the shard journal, not just
  // the in-memory fallback.
  bool journal_sourced = false;
  for (const auto& [slot, text] : o1.post_mortems) {
    EXPECT_NE(text.find("post-mortem slot " + std::to_string(slot)), std::string::npos);
    if (text.find("journal black box") != std::string::npos) journal_sourced = true;
  }
  EXPECT_TRUE(journal_sourced);
}

// Closed-loop acceptance: with the interval estimator fed purely from
// detector confirmations (measured MTBF) and measured commit cost, the
// fleet's adapted interval must converge to within 20% of the analytic
// Young optimum computed from injector ground truth — starting from a
// deliberately wrong (30x) MTBF prior.
TEST_F(FleetSoak, MeasuredMtbfIntervalConvergesOnAnalyticYoung) {
  FleetOptions options;
  options.active_nodes = 64;
  options.spare_nodes = 16;
  options.shards = 8;
  options.seed = 909;
  options.policy.initial_interval = 2 * options.window;
  options.policy.initial_mtbf = 3600 * kSecond;  // wrong prior: real fleet MTBF is ~1.5s
  options.policy.min_interval = 1;               // let Young's answer through unclamped
  options.policy.smoothing = 0.05;
  options.guest_steps_min = 1;
  options.guest_steps_max = 3;
  options.array_bytes = 4 * 1024;
  ASSERT_TRUE(options.closed_loop_interval);  // the default under test

  FleetManager fleet(options);
  fleet.run(3);  // warm-up: every slot commits, cost estimate seeds
  ASSERT_EQ(fleet.report().failures_injected, 0u);
  const SimTime torture_start = fleet.report().sim_elapsed;

  // Pure fail-stop process, no detector noise: ground truth and detector
  // confirmations describe the same failures.  repair_time refills the
  // spare pool so the failure process never starves.
  FleetTortureOptions torture;
  torture.failure_models.push_back(
      {FailureModel::Kind::kExponential, 120 * kSecond, 0.7, 3 * kSecond, 404});
  fleet.arm_torture(torture);
  const FleetReport report = fleet.run(600);
  SCOPED_TRACE(report.summary());

  ASSERT_TRUE(report.ok());
  ASSERT_GT(report.failures_injected, 40u);
  ASSERT_GT(report.confirmed_dead, 40u);

  // Analytic MTBF from injector ground truth over the torture phase.
  const SimTime analytic_mtbf =
      (report.sim_elapsed - torture_start) / report.failures_injected;
  const core::IntervalEstimator& estimator = fleet.estimator();
  EXPECT_GT(estimator.cost_estimate(), 0u);
  EXPECT_GT(estimator.failures_seen(), 0u);
  const SimTime analytic =
      core::young_interval(estimator.cost_estimate(), analytic_mtbf);
  const SimTime converged = estimator.interval();
  ASSERT_GT(analytic, 0u);

  // Within 20% — and decisively off the wrong prior, which would have put
  // the interval sqrt(3600s / ~1.5s) ~ 49x higher.
  const double ratio = static_cast<double>(converged) / static_cast<double>(analytic);
  EXPECT_GT(ratio, 0.8) << "converged=" << converged << " analytic=" << analytic;
  EXPECT_LT(ratio, 1.2) << "converged=" << converged << " analytic=" << analytic;
  const SimTime prior_interval =
      core::young_interval(estimator.cost_estimate(), options.policy.initial_mtbf);
  EXPECT_LT(converged * 4, prior_interval);

  // The overhead ledger's measured MTBF tracks the same ground truth (gap
  // collapsing across same-window confirmations biases it high, but it must
  // stay the right order of magnitude).
  const SimTime measured = fleet.accountant().measured_mtbf();
  EXPECT_GT(measured, analytic_mtbf / 2);
  EXPECT_LT(measured, analytic_mtbf * 3);
}

}  // namespace
}  // namespace ckpt::cluster
