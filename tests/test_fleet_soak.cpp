// Fleet torture soak (label `fleet`): a 500+-node fleet under combined
// stochastic fail-stop (exponential AND Weibull infant-mortality models,
// never-repaired), detector false-suspicions and storage faults must
// complete with zero data-loss-with-intact-replica violations, every
// confirmed-dead slot replaced from the spare pool and re-seeded to a
// verified-restorable image — and the whole thing byte-identical for any
// worker count.
#include <gtest/gtest.h>

#include "cluster/fleet.hpp"
#include "obs/observer.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

class FleetSoak : public SimTest {};

FleetTortureOptions soak_torture() {
  FleetTortureOptions torture;
  // Exponential + Weibull superposition.  Weibull shape 0.7 front-loads
  // failures (infant mortality), so its mean must be read against the short
  // soak horizon: ~5% of the fleet fails in the first 10 simulated seconds.
  torture.failure_models.push_back(
      {FailureModel::Kind::kExponential, 300 * kSecond, 0.7, 0, 101});
  torture.failure_models.push_back(
      {FailureModel::Kind::kWeibull, 900 * kSecond, 0.7, 0, 202});
  torture.heartbeat_drop_per_window = 0.0005;
  torture.heartbeat_drop_beats = 6;
  torture.storage_fault_per_window = 0.3;
  return torture;
}

TEST_F(FleetSoak, FiveHundredNodeTortureSoakHoldsEveryInvariant) {
  FleetOptions options;
  options.active_nodes = 520;
  options.spare_nodes = 72;
  options.shards = 16;
  options.seed = 77;
  options.policy.initial_interval = 4 * options.window;
  options.policy.initial_mtbf = 10 * kSecond;
  options.guest_steps_min = 1;
  options.guest_steps_max = 3;
  options.array_bytes = 4 * 1024;

  FleetManager fleet(options);
  fleet.run(3);  // every slot commits before the faults start
  ASSERT_EQ(fleet.report().commits_failed, 0u);
  ASSERT_GT(fleet.report().commits_ok, 0u);

  fleet.arm_torture(soak_torture());
  const FleetReport report = fleet.run(40);
  SCOPED_TRACE(report.summary());

  // The storm actually happened.
  EXPECT_GT(report.failures_injected, 10u);
  EXPECT_GT(report.confirmed_dead, 10u);
  EXPECT_GT(report.storage_faults_injected, 5u);
  EXPECT_GT(report.heartbeats_suppressed, 0u);

  // THE gates: nothing recoverable was lost, every replacement re-seeded
  // to an image that byte-verified against the restored process, and no
  // slot was left waiting.
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.data_loss_with_intact_replica, 0u);
  EXPECT_EQ(report.verify_failures, 0u);
  EXPECT_EQ(report.unrecovered, 0u);
  EXPECT_EQ(report.pending_at_end, 0u);
  EXPECT_GT(report.replacements, 0u);
  EXPECT_EQ(report.replacements, report.reseeds_from_image + report.cold_starts);
  EXPECT_EQ(report.cold_starts, 0u);  // warm-up committed everywhere

  // The fleet kept making durable progress throughout.
  EXPECT_GT(report.commits_ok, 1000u);
  EXPECT_GT(report.group_commits, 0u);
  EXPECT_GT(report.durable_bytes, 0u);
}

TEST_F(FleetSoak, WorkerCountInvarianceAtScale) {
  auto run_with = [](std::uint32_t workers, obs::Observer& observer) {
    FleetOptions options;
    options.active_nodes = 128;
    options.spare_nodes = 16;
    options.shards = 8;
    options.seed = 55;
    options.policy.initial_interval = 2 * options.window;
    options.policy.initial_mtbf = 10 * kSecond;
    options.guest_steps_min = 1;
    options.guest_steps_max = 3;
    options.array_bytes = 4 * 1024;
    options.workers = workers;
    options.observer = &observer;
    FleetManager fleet(options);
    FleetTortureOptions torture = soak_torture();
    torture.failure_models[0].mtbf = 60 * kSecond;
    torture.failure_models[1].mtbf = 60 * kSecond;
    fleet.arm_torture(torture);
    return fleet.run(24);
  };

  obs::Observer obs1;
  obs::Observer obs8;
  const FleetReport r1 = run_with(1, obs1);
  const FleetReport r8 = run_with(8, obs8);

  EXPECT_GT(r1.replacements, 0u);
  EXPECT_TRUE(r1 == r8);
  EXPECT_EQ(r1.digest(), r8.digest());
  EXPECT_EQ(obs1.metrics().snapshot_json(), obs8.metrics().snapshot_json());
  EXPECT_EQ(obs1.trace().export_chrome_json(), obs8.trace().export_chrome_json());
}

}  // namespace
}  // namespace ckpt::cluster
