// Content-addressed dedup store (storage/dedup): manifest+chunk round-trips,
// hash-then-byte-compare collision safety, delta encoding, refcounted
// chain-aware GC, and the replicated chunk-diff protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <bitset>
#include <optional>
#include <random>
#include <vector>

#include "storage/backend.hpp"
#include "storage/chain.hpp"
#include "storage/dedup.hpp"
#include "storage/image.hpp"
#include "storage/replicated.hpp"
#include "util/crc64.hpp"
#include "util/threadpool.hpp"

namespace ckpt::storage {
namespace {

constexpr sim::VAddr kBase = 0x10000;

PageImage make_page(sim::PageNum page, std::vector<std::byte> data) {
  PageImage out;
  out.page = page;
  out.data = std::move(data);
  return out;
}

std::vector<std::byte> filled(std::size_t size, std::uint8_t fill) {
  return std::vector<std::byte>(size, static_cast<std::byte>(fill));
}

/// A full image whose single data segment carries `pages` (page numbers are
/// consecutive from page_of(kBase)).
CheckpointImage make_image(std::uint64_t tag, std::vector<std::vector<std::byte>> pages) {
  CheckpointImage image;
  image.kind = ImageKind::kFull;
  image.pid = 42;
  image.process_name = "app";
  image.taken_at = tag;
  image.threads.push_back(ThreadImage{1, {}});
  image.threads[0].regs.pc = tag;
  MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(kBase), static_cast<std::uint64_t>(pages.size()),
                     sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::size_t i = 0; i < pages.size(); ++i) {
    seg.pages.push_back(make_page(seg.vma.first_page + i, std::move(pages[i])));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

/// An image exercising every serialized field: multiple segments, sub-page
/// payloads, saved file contents, signals, ports.
CheckpointImage make_rich_image(std::uint64_t tag) {
  CheckpointImage image = make_image(tag, {filled(sim::kPageSize, 0x11),
                                           filled(sim::kPageSize, 0x22)});
  MemorySegmentImage stack;
  stack.vma = sim::Vma{sim::page_of(0x7f0000), 2, sim::kProtRW, sim::VmaKind::kStack, "stack"};
  PageImage partial;
  partial.page = stack.vma.first_page;
  partial.offset = 64;
  partial.data = filled(96, 0x33);
  stack.pages.push_back(partial);
  image.segments.push_back(std::move(stack));
  image.brk = kBase + 4 * sim::kPageSize;
  image.heap_base = kBase;
  image.mmap_next = 0x800000;
  image.sig_pending = 0x5;
  image.sig_mask = 0xA;
  image.sig_dispositions = {0, 1, 2};
  FileDescriptorImage file;
  file.fd = 3;
  file.path = "/tmp/data";
  file.offset = 17;
  file.contents = filled(200, 0x44);
  image.files.push_back(std::move(file));
  image.bound_ports = {8080};
  return image;
}

class DedupTest : public ::testing::Test {
 protected:
  sim::CostModel costs_{};
  LocalDiskBackend media_{costs_};
};

// --- Round-trip fidelity -----------------------------------------------------

TEST_F(DedupTest, RoundTripIsBitIdenticalToFlatSerialization) {
  DedupStore store(&media_);
  const CheckpointImage original = make_rich_image(7);
  const ImageId id = store.store(original, nullptr);
  ASSERT_NE(id, kBadImageId);
  const auto loaded = store.load(id, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->serialize(), original.serialize());
}

TEST_F(DedupTest, IdenticalPagesAreStoredOnce) {
  DedupStore store(&media_);
  std::vector<std::vector<std::byte>> pages(8, filled(sim::kPageSize, 0x77));
  const ImageId id = store.store(make_image(1, std::move(pages)), nullptr);
  ASSERT_NE(id, kBadImageId);
  EXPECT_EQ(store.stats().chunks_created, 1u);
  EXPECT_EQ(store.stats().chunks_reused, 7u);
  // One page of content plus a small manifest, not eight pages.
  EXPECT_LT(store.stats().bytes_stored, 2 * sim::kPageSize);
  const auto loaded = store.load(id, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages.size(), 8u);
}

TEST_F(DedupTest, UnchangedContentIsNeverRewritten) {
  DedupStore store(&media_);
  CheckpointImage first = make_image(1, {filled(sim::kPageSize, 0x01),
                                         filled(sim::kPageSize, 0x02),
                                         filled(sim::kPageSize, 0x03)});
  ASSERT_NE(store.store(first, nullptr), kBadImageId);
  const std::uint64_t chunks_after_first = store.stats().chunks_created;
  const std::uint64_t media_after_first = media_.stored_bytes();

  // Same content again: only a manifest hits the media.
  CheckpointImage second = first;
  second.taken_at = 2;
  const ImageId id2 = store.store(second, nullptr);
  ASSERT_NE(id2, kBadImageId);
  EXPECT_EQ(store.stats().chunks_created, chunks_after_first);
  EXPECT_LT(media_.stored_bytes() - media_after_first, sim::kPageSize / 2);
  const auto loaded = store.load(id2, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->serialize(), second.serialize());
}

// --- Delta encoding ----------------------------------------------------------

TEST_F(DedupTest, SmallPageDiffsDeltaEncodeAgainstThePredecessor) {
  DedupStore store(&media_);
  std::vector<std::byte> v1(sim::kPageSize);
  for (std::size_t i = 0; i < v1.size(); ++i) {
    v1[i] = static_cast<std::byte>(i * 31 + 7);
  }
  std::vector<std::byte> v2 = v1;
  for (std::size_t i = 100; i < 108; ++i) {
    v2[i] = static_cast<std::byte>(0xEE);
  }
  ASSERT_NE(store.store(make_image(1, {v1}), nullptr), kBadImageId);
  const std::uint64_t stored_v1 = store.stats().bytes_stored;
  const ImageId id2 = store.store(make_image(2, {v2}), nullptr);
  ASSERT_NE(id2, kBadImageId);
  EXPECT_EQ(store.stats().delta_chunks, 1u);
  // The 8-byte diff must cost far less than a raw page on media.
  EXPECT_LT(store.stats().bytes_stored - stored_v1, sim::kPageSize / 4);
  const auto loaded = store.load(id2, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages[0].data, v2);
}

TEST_F(DedupTest, DeltaChainDepthIsBounded) {
  DedupOptions options;
  options.max_delta_depth = 2;
  DedupStore store(&media_, options);
  std::vector<std::vector<std::byte>> versions;
  std::vector<std::byte> page(sim::kPageSize);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::byte>(i);
  }
  std::vector<ImageId> ids;
  for (std::uint64_t v = 0; v < 5; ++v) {
    page[5] = static_cast<std::byte>(0xC0 + v);  // tiny mutation per version
    versions.push_back(page);
    const ImageId id = store.store(make_image(v + 1, {page}), nullptr);
    ASSERT_NE(id, kBadImageId);
    ids.push_back(id);
  }
  // v2 (depth 1) and v3 (depth 2) delta; v4 would exceed the bound and is
  // stored raw; v5 deltas against the fresh raw base.
  EXPECT_EQ(store.stats().delta_chunks, 3u);
  for (std::size_t v = 0; v < ids.size(); ++v) {
    const auto loaded = store.load(ids[v], nullptr);
    ASSERT_TRUE(loaded.has_value()) << "version " << v;
    EXPECT_EQ(loaded->segments[0].pages[0].data, versions[v]) << "version " << v;
  }
}

// --- Hash collisions ---------------------------------------------------------

/// Engineer two distinct 16-byte contents with the same CRC64.  CRC is
/// affine over GF(2) for fixed-length input: crc(m1) == crc(m2) iff
/// L(m1 ^ m2) == 0 where L(x) = crc(x) ^ crc(0...0).  The 128 basis images
/// L(e_i) span at most 64 dimensions, so Gaussian elimination must find a
/// nonzero kernel vector d; any m and m ^ d then collide.
std::array<std::vector<std::byte>, 2> colliding_contents() {
  constexpr std::size_t kBits = 128;
  constexpr std::size_t kBytes = kBits / 8;
  const std::vector<std::byte> zeros(kBytes, std::byte{0});
  const std::uint64_t crc_zero = util::crc64(zeros);

  struct Row {
    std::uint64_t value = 0;
    std::bitset<kBits> combo;
  };
  std::array<std::optional<Row>, 64> basis;
  std::bitset<kBits> kernel;
  for (std::size_t i = 0; i < kBits && kernel.none(); ++i) {
    std::vector<std::byte> unit = zeros;
    unit[i / 8] = static_cast<std::byte>(1u << (i % 8));
    Row row{util::crc64(unit) ^ crc_zero, {}};
    row.combo.set(i);
    bool placed = false;
    while (row.value != 0) {
      const int lead = 63 - std::countl_zero(row.value);
      auto& slot = basis[static_cast<std::size_t>(lead)];
      if (!slot.has_value()) {
        slot = row;
        placed = true;
        break;
      }
      row.value ^= slot->value;
      row.combo ^= slot->combo;
    }
    if (!placed) {
      kernel = row.combo;  // L(kernel) == 0 with kernel != 0 (bit i is fresh)
    }
  }
  // Build m1 (arbitrary) and m2 = m1 ^ d.
  std::vector<std::byte> m1(kBytes, std::byte{0x5A});
  std::vector<std::byte> m2 = m1;
  for (std::size_t i = 0; i < kBits; ++i) {
    if (kernel.test(i)) {
      m2[i / 8] ^= static_cast<std::byte>(1u << (i % 8));
    }
  }
  return {m1, m2};
}

TEST_F(DedupTest, CrcCollisionsCoexistUnderDistinctOrdinals) {
  const auto [m1, m2] = colliding_contents();
  ASSERT_NE(m1, m2) << "kernel vector must be nonzero";
  ASSERT_EQ(util::crc64(m1), util::crc64(m2)) << "engineered collision failed";

  DedupOptions options;
  options.delta_encode = false;  // isolate the identity path
  DedupStore store(&media_, options);
  const ImageId id = store.store(make_image(1, {m1, m2}), nullptr);
  ASSERT_NE(id, kBadImageId);
  // Same (crc, size), different bytes: the byte-compare must keep both as
  // distinct chunks rather than silently aliasing one onto the other.
  EXPECT_EQ(store.stats().chunks_created, 2u);
  EXPECT_EQ(store.stats().chunks_reused, 0u);
  const auto loaded = store.load(id, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages[0].data, m1);
  EXPECT_EQ(loaded->segments[0].pages[1].data, m2);
}

// --- Property: random image chains round-trip --------------------------------

TEST_F(DedupTest, RandomImageChainsRoundTripBitIdentically) {
  std::mt19937_64 rng(0xD5D5'2026ULL);
  DedupStore store(&media_);
  std::vector<std::pair<ImageId, std::vector<std::byte>>> expected;

  std::uniform_int_distribution<int> page_count(1, 6);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> size_pick(0, 2);

  std::vector<std::vector<std::byte>> pages;
  for (int round = 0; round < 24; ++round) {
    if (pages.empty() || round % 6 == 0) {
      pages.clear();
      const int n = page_count(rng);
      for (int p = 0; p < n; ++p) {
        const std::size_t sizes[] = {64, 1024, sim::kPageSize};
        std::vector<std::byte> data(sizes[size_pick(rng)]);
        for (auto& b : data) b = static_cast<std::byte>(byte_dist(rng));
        pages.push_back(std::move(data));
      }
    } else {
      // Mutate a random subset of bytes in one random page.
      auto& victim = pages[rng() % pages.size()];
      const int edits = 1 + static_cast<int>(rng() % 16);
      for (int e = 0; e < edits; ++e) {
        victim[rng() % victim.size()] = static_cast<std::byte>(byte_dist(rng));
      }
    }
    CheckpointImage image = make_image(static_cast<std::uint64_t>(round + 1), pages);
    const std::vector<std::byte> flat = image.serialize();
    const ImageId id = store.store(image, nullptr);
    ASSERT_NE(id, kBadImageId) << "round " << round;
    expected.emplace_back(id, flat);
  }
  for (const auto& [id, flat] : expected) {
    const auto loaded = store.load(id, nullptr);
    ASSERT_TRUE(loaded.has_value()) << "id " << id;
    EXPECT_EQ(loaded->serialize(), flat) << "id " << id;
  }
  // The mutation-heavy chain must have actually exercised dedup and deltas.
  EXPECT_GT(store.stats().chunks_reused, 0u);
  EXPECT_GT(store.stats().delta_chunks, 0u);
  EXPECT_LT(store.stats().stored_permille(), 1000u);
}

// --- Failure atomicity -------------------------------------------------------

TEST_F(DedupTest, FailedStoreLeavesNoTraceOnMediaOrInTheTable) {
  DedupStore store(&media_);
  media_.inject_store_fault(StoreFault::kReject);
  const ImageId id = store.store(make_image(1, {filled(sim::kPageSize, 0x01)}), nullptr);
  EXPECT_EQ(id, kBadImageId);
  EXPECT_TRUE(media_.list().empty());
  EXPECT_EQ(store.chunk_count(), 0u);
  EXPECT_EQ(store.stats().images, 0u);
  // The table must be clean enough for the next store to succeed normally.
  const ImageId retry = store.store(make_image(2, {filled(sim::kPageSize, 0x02)}), nullptr);
  ASSERT_NE(retry, kBadImageId);
  EXPECT_TRUE(store.load(retry, nullptr).has_value());
}

TEST_F(DedupTest, TornChunkWriteSurfacesAsLoadFailureNeverWrongBytes) {
  DedupStore store(&media_);
  media_.inject_store_fault(StoreFault::kTornWrite);
  // The torn write hits the first staged chunk blob; the single-media
  // DedupStore (unlike ReplicatedStore) does not read back at commit, so the
  // damage must surface at load as nullopt via the blob CRC.
  const ImageId id = store.store(make_image(1, {filled(sim::kPageSize, 0x01)}), nullptr);
  ASSERT_NE(id, kBadImageId);
  EXPECT_FALSE(store.load(id, nullptr).has_value());
}

// --- GC and the chain fallback set -------------------------------------------

TEST_F(DedupTest, EraseThenGcReclaimsOnlyOrphanedChunks) {
  DedupStore store(&media_);
  const auto pa = filled(sim::kPageSize, 0xA1);
  const auto pb = filled(sim::kPageSize, 0xB2);
  const auto pc = filled(sim::kPageSize, 0xC3);
  const ImageId first = store.store(make_image(1, {pa, pb}), nullptr);
  const ImageId second = store.store(make_image(2, {pb, pc}), nullptr);
  ASSERT_NE(first, kBadImageId);
  ASSERT_NE(second, kBadImageId);
  ASSERT_EQ(store.chunk_count(), 3u);

  EXPECT_TRUE(store.erase(first));
  const GcReport report = store.gc(nullptr);
  // Only `pa` is orphaned; `pb` is still pinned by the second image.
  EXPECT_EQ(report.chunks_freed, 1u);
  EXPECT_GT(report.bytes_freed, 0u);
  EXPECT_EQ(report.chunks_live, 2u);
  const auto loaded = store.load(second, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages[0].data, pb);
  EXPECT_EQ(loaded->segments[0].pages[1].data, pc);

  EXPECT_TRUE(store.erase(second));
  EXPECT_EQ(store.gc(nullptr).chunks_live, 0u);
  EXPECT_TRUE(media_.list().empty());
  EXPECT_EQ(media_.stored_bytes(), 0u);
}

TEST_F(DedupTest, GcKeepsDeltaBasesAliveThroughTheClosure) {
  DedupStore store(&media_);
  std::vector<std::byte> v1(sim::kPageSize);
  for (std::size_t i = 0; i < v1.size(); ++i) {
    v1[i] = static_cast<std::byte>(i * 13);
  }
  std::vector<std::byte> v2 = v1;
  v2[9] = std::byte{0xFF};
  const ImageId first = store.store(make_image(1, {v1}), nullptr);
  const ImageId second = store.store(make_image(2, {v2}), nullptr);
  ASSERT_EQ(store.stats().delta_chunks, 1u);

  // Erasing the image that *introduced* the base must not strand the delta:
  // the second image's closure pinned the base chunk too.
  EXPECT_TRUE(store.erase(first));
  EXPECT_EQ(store.gc(nullptr).chunks_freed, 0u);
  const auto loaded = store.load(second, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages[0].data, v2);
}

CheckpointImage chain_image(ImageKind kind, std::uint8_t fill) {
  CheckpointImage image = make_image(fill, {filled(sim::kPageSize, fill)});
  image.kind = kind;
  return image;
}

TEST_F(DedupTest, PruneThenGcFreesOnlyChunksOutsideTheLiveSet) {
  DedupStore store(&media_);
  CheckpointChain chain(&store);
  ASSERT_NE(chain.append(chain_image(ImageKind::kFull, 0x01), nullptr), kBadImageId);
  ASSERT_NE(chain.append(chain_image(ImageKind::kIncremental, 0x02), nullptr), kBadImageId);
  ASSERT_NE(chain.append(chain_image(ImageKind::kFull, 0x03), nullptr), kBadImageId);
  const ImageId tail = chain.append(chain_image(ImageKind::kIncremental, 0x04), nullptr);
  ASSERT_NE(tail, kBadImageId);

  const std::vector<ImageId> live = chain.live_set(nullptr);
  ASSERT_EQ(live.size(), 2u);  // newest full + its delta
  const auto before = chain.reconstruct(nullptr);
  ASSERT_TRUE(before.has_value());

  chain.prune(nullptr);
  EXPECT_EQ(chain.length(), 2u);
  // prune kept exactly live_set(): the store's remaining ids match it.
  std::vector<ImageId> remaining = store.list();
  std::vector<ImageId> want = live;
  std::sort(remaining.begin(), remaining.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(remaining, want);

  const GcReport report = store.gc(nullptr);
  EXPECT_EQ(report.chunks_freed, 2u);  // pages 0x01 and 0x02 are unreachable
  const auto after = chain.reconstruct(nullptr);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->serialize(), before->serialize());
}

TEST_F(DedupTest, GcNeverFreesWhatTheSurvivingRestartPathNeeds) {
  // The regression the shared live_set() walk prevents: when the newest full
  // image is corrupt, prune must keep the older history and GC must not free
  // any chunk reconstruct_newest_surviving() still reaches through it.
  DedupStore store(&media_);
  CheckpointChain chain(&store);
  ASSERT_NE(chain.append(chain_image(ImageKind::kFull, 0x01), nullptr), kBadImageId);
  ASSERT_NE(chain.append(chain_image(ImageKind::kIncremental, 0x02), nullptr), kBadImageId);
  ASSERT_NE(chain.append(chain_image(ImageKind::kFull, 0x03), nullptr), kBadImageId);
  // The manifest is the last blob a dedup store() writes: newest_id() right
  // after the append is the new full image's manifest.
  const ImageId newest_full_manifest = media_.newest_id();
  ASSERT_NE(chain.append(chain_image(ImageKind::kIncremental, 0x04), nullptr), kBadImageId);

  ASSERT_TRUE(media_.corrupt_blob(newest_full_manifest, 0, 64));

  // No verifying full image newer than the first: everything stays live.
  EXPECT_EQ(chain.live_set(nullptr).size(), 4u);
  chain.prune(nullptr);
  EXPECT_EQ(chain.length(), 4u);
  EXPECT_EQ(store.gc(nullptr).chunks_freed, 0u);

  // The fallback restart must still reach the pre-corruption sequence point.
  const auto survived = chain.reconstruct_newest_surviving(nullptr);
  ASSERT_TRUE(survived.has_value());
  EXPECT_EQ(survived->segments[0].pages[0].data, filled(sim::kPageSize, 0x02));
}

// --- Replicated dedup mode ---------------------------------------------------

class ReplicatedDedupTest : public ::testing::Test {
 protected:
  sim::CostModel costs_{};
  LocalDiskBackend local_{costs_};
  RemoteBackend remote_{costs_};

  ReplicatedStore make_store(ReplicatedOptions options = {}) {
    options.dedup = true;
    return ReplicatedStore({&local_, &remote_}, options);
  }

  static CheckpointImage four_pages(std::uint64_t tag, std::uint8_t changed = 0) {
    std::vector<std::vector<std::byte>> pages;
    for (std::uint8_t p = 0; p < 4; ++p) {
      pages.push_back(filled(sim::kPageSize, static_cast<std::uint8_t>(0x10 + p)));
    }
    if (changed != 0) {
      pages[1] = filled(sim::kPageSize, changed);
    }
    return make_image(tag, std::move(pages));
  }
};

TEST_F(ReplicatedDedupTest, StoresStageOnlyTheChunksEachReplicaIsMissing) {
  ReplicatedStore store = make_store();
  const StoreReceipt first = store.store_verbose(four_pages(1), nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.committed_replicas, 2u);
  // 4 chunks + 1 manifest per replica.
  EXPECT_EQ(local_.list().size(), 5u);
  EXPECT_EQ(remote_.list().size(), 5u);

  const StoreReceipt second = store.store_verbose(four_pages(2, /*changed=*/0x99), nullptr);
  ASSERT_TRUE(second.ok());
  // Only the changed page's chunk plus the new manifest travel.
  EXPECT_EQ(local_.list().size(), 7u);
  EXPECT_EQ(remote_.list().size(), 7u);
  EXPECT_EQ(store.intact_replicas(first.id), 2u);
  EXPECT_EQ(store.intact_replicas(second.id), 2u);
  const auto loaded = store.load(second.id, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages[1].data, filled(sim::kPageSize, 0x99));
}

TEST_F(ReplicatedDedupTest, ReplicaThatMissedAStoreCatchesUpViaScrub) {
  ReplicatedStore store = make_store();
  const StoreReceipt first = store.store_verbose(four_pages(1), nullptr);
  ASSERT_TRUE(first.ok());

  remote_.set_outage(true);
  const StoreReceipt second = store.store_verbose(four_pages(2, 0x99), nullptr);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.committed_replicas, 1u);
  remote_.set_outage(false);
  EXPECT_EQ(store.intact_replicas(second.id), 1u);

  const ScrubReport report = store.scrub(nullptr);
  EXPECT_GT(report.missing_found, 0u);
  EXPECT_EQ(report.missing_found, report.repaired);
  EXPECT_EQ(report.unrepairable, 0u);
  EXPECT_GT(report.chunks, 0u);
  EXPECT_EQ(store.intact_replicas(second.id), 2u);
  const auto loaded = store.load_from(1, second.id, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->segments[0].pages[1].data, filled(sim::kPageSize, 0x99));
}

TEST_F(ReplicatedDedupTest, ScrubRepairsACorruptChunkCopyFromThePeer) {
  ReplicatedStore store = make_store();
  const StoreReceipt receipt = store.store_verbose(four_pages(1), nullptr);
  ASSERT_TRUE(receipt.ok());
  // Chunks stage before the manifest, so the replica's first blob id is a
  // content chunk.
  ASSERT_TRUE(local_.corrupt_blob(local_.list().front(), 0, 32));
  EXPECT_EQ(store.intact_replicas(receipt.id), 1u);

  const ScrubReport report = store.scrub(nullptr);
  EXPECT_GE(report.corrupt_found, 1u);
  EXPECT_GE(report.repaired, 1u);
  EXPECT_EQ(report.unrepairable, 0u);
  EXPECT_EQ(store.intact_replicas(receipt.id), 2u);
  EXPECT_TRUE(store.load_from(0, receipt.id, nullptr).has_value());
}

TEST_F(ReplicatedDedupTest, RetargetedReplicaIsRebuiltChunksAndAll) {
  ReplicatedStore store = make_store();
  const StoreReceipt first = store.store_verbose(four_pages(1), nullptr);
  const StoreReceipt second = store.store_verbose(four_pages(2, 0x99), nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  RemoteBackend replacement{costs_};
  store.retarget_replica(1, &replacement);
  EXPECT_EQ(store.intact_replicas(first.id), 1u);

  const ScrubReport report = store.scrub(nullptr);
  EXPECT_GT(report.repaired, 0u);
  EXPECT_EQ(report.unrepairable, 0u);
  // Full history (both manifests and the whole chunk set) lives on the
  // replacement now.
  EXPECT_EQ(store.intact_replicas(first.id), 2u);
  EXPECT_EQ(store.intact_replicas(second.id), 2u);
  EXPECT_TRUE(store.load_from(1, first.id, nullptr).has_value());
  EXPECT_TRUE(store.load_from(1, second.id, nullptr).has_value());
}

TEST_F(ReplicatedDedupTest, EraseThenGcFreesChunkBlobsOnEveryReplica) {
  ReplicatedStore store = make_store();
  const StoreReceipt first = store.store_verbose(four_pages(1), nullptr);
  const StoreReceipt second = store.store_verbose(four_pages(2, 0x99), nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const std::size_t local_before = local_.list().size();

  EXPECT_TRUE(store.erase(first.id));
  const GcReport report = store.gc(nullptr);
  // Page 1's original content was only referenced by the first image.
  EXPECT_EQ(report.chunks_freed, 1u);
  // Manifest + freed chunk gone from each replica.
  EXPECT_EQ(local_.list().size(), local_before - 2);
  EXPECT_EQ(remote_.list().size(), local_before - 2);
  EXPECT_TRUE(store.load(second.id, nullptr).has_value());
  EXPECT_EQ(store.intact_replicas(second.id), 2u);
}

TEST_F(ReplicatedDedupTest, WorkerCountNeverChangesReplicaContentsOrCharges) {
  struct Run {
    std::vector<std::vector<std::byte>> local_blobs;
    std::vector<std::vector<std::byte>> remote_blobs;
    std::vector<SimTime> charges;
    std::vector<ImageId> ids;
  };
  auto run_with = [&](unsigned workers) {
    util::ThreadPool pool(workers);
    sim::CostModel costs{};
    LocalDiskBackend local{costs};
    RemoteBackend remote{costs};
    ReplicatedOptions options;
    options.dedup = true;
    options.pool = &pool;
    ReplicatedStore store({&local, &remote}, options);

    Run run;
    const ChargeFn charge = [&](SimTime t) { run.charges.push_back(t); };
    for (std::uint64_t tag = 1; tag <= 4; ++tag) {
      const StoreReceipt receipt =
          store.store_verbose(four_pages(tag, static_cast<std::uint8_t>(0x90 + tag)), charge);
      EXPECT_TRUE(receipt.ok());
      run.ids.push_back(receipt.id);
    }
    for (const ImageId id : local.list()) {
      run.local_blobs.push_back(*local.read_blob(id, nullptr));
    }
    for (const ImageId id : remote.list()) {
      run.remote_blobs.push_back(*remote.read_blob(id, nullptr));
    }
    return run;
  };

  const Run serial = run_with(1);
  const Run pooled = run_with(8);
  EXPECT_EQ(serial.ids, pooled.ids);
  EXPECT_EQ(serial.charges, pooled.charges);
  EXPECT_EQ(serial.local_blobs, pooled.local_blobs);
  EXPECT_EQ(serial.remote_blobs, pooled.remote_blobs);
}

}  // namespace
}  // namespace ckpt::storage
