// Unit tests for the fault-injection subsystem (src/inject): the
// deterministic FaultPlan, and the storage / kernel / cluster injectors the
// torture harness is built from.
#include <gtest/gtest.h>

#include <set>

#include "cluster/node.hpp"
#include "core/capture.hpp"
#include "inject/fault.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ckpt::inject {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, SameSeedReplaysTheIdenticalSchedule) {
  FaultPlan a(99, FaultPlan::default_mix());
  FaultPlan b(99, FaultPlan::default_mix());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "draw " << i;
  }
  EXPECT_EQ(a.drawn(), 200u);
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan a(99, FaultPlan::default_mix());
  FaultPlan b(100, FaultPlan::default_mix());
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) diverged = !(a.next() == b.next());
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, DrawsEveryKindInTheMix) {
  FaultPlan plan(1, FaultPlan::default_mix());
  std::set<FaultKind> seen;
  for (int i = 0; i < 500; ++i) seen.insert(plan.next().kind);
  for (const FaultPlan::Weighted& entry : FaultPlan::default_mix()) {
    EXPECT_TRUE(seen.count(entry.kind)) << to_string(entry.kind);
  }
}

TEST(FaultPlan, RespectsRestrictedVocabulary) {
  FaultPlan plan(1, {{FaultKind::kTornStore, 1}});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(plan.next().kind, FaultKind::kTornStore);
}

TEST(FaultPlan, RejectsDegenerateVocabularies) {
  EXPECT_THROW(FaultPlan(1, {}), std::invalid_argument);
  EXPECT_THROW(FaultPlan(1, {{FaultKind::kNone, 0}}), std::invalid_argument);
}

// --- StorageInjector --------------------------------------------------------

TEST(StorageInjector, CorruptNewestHitsTheLatestImage) {
  storage::LocalDiskBackend backend{sim::CostModel{}};
  StorageInjector injector(backend);
  util::Rng rng(3);

  EXPECT_FALSE(injector.corrupt_newest(rng, 4));  // nothing stored yet

  storage::CheckpointImage image;
  image.pid = 5;
  image.guest = sim::GuestImage{"counter", {}};
  const storage::ImageId first = backend.store(image, nullptr);
  const storage::ImageId second = backend.store(image, nullptr);
  ASSERT_TRUE(injector.corrupt_newest(rng, 4));
  EXPECT_TRUE(backend.load(first, nullptr).has_value());    // untouched
  EXPECT_FALSE(backend.load(second, nullptr).has_value());  // the newest
}

TEST(StorageInjector, OutageBracketsAreSymmetric) {
  storage::RemoteBackend backend{sim::CostModel{}};
  StorageInjector injector(backend);
  injector.begin_outage();
  EXPECT_TRUE(backend.in_outage());
  EXPECT_FALSE(backend.reachable());
  injector.end_outage();
  EXPECT_TRUE(backend.reachable());
}

// --- ProcessInjector (kernel hooks) -----------------------------------------

class ProcessInjectorTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
};

TEST_F(ProcessInjectorTest, KillAtFailStopsTheProcessOnSchedule) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ProcessInjector injector(kernel_);
  injector.kill_at(pid, kernel_.now() + 5 * kMillisecond);

  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  EXPECT_EQ(kernel_.find_process(pid), nullptr);  // terminated and reaped
}

TEST_F(ProcessInjectorTest, KillAtToleratesAlreadyDeadPids) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ProcessInjector injector(kernel_);
  injector.kill_at(pid, kernel_.now() + 5 * kMillisecond);
  kernel_.terminate(kernel_.process(pid), 0);
  kernel_.reap(pid);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);  // timer fires on nothing
  EXPECT_EQ(kernel_.find_process(pid), nullptr);
}

TEST_F(ProcessInjectorTest, StopAtFreezesProgress) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 3);
  ProcessInjector injector(kernel_);
  injector.stop_at(pid, kernel_.now() + 1);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);

  sim::Process& proc = kernel_.process(pid);
  EXPECT_FALSE(proc.runnable());
  const std::uint64_t frozen_at = proc.stats.guest_iterations;
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  EXPECT_EQ(proc.stats.guest_iterations, frozen_at);  // starved, not running

  kernel_.resume_process(proc);
  run_steps(kernel_, pid, frozen_at + 2);
  EXPECT_GT(proc.stats.guest_iterations, frozen_at);
}

TEST_F(ProcessInjectorTest, DropSignalLosesAPendingCheckpointRequest) {
  bool delivered = false;
  kernel_.register_kernel_signal(
      sim::kSigCkpt, [&delivered](sim::SimKernel&, sim::Process&) { delivered = true; },
      nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ProcessInjector injector(kernel_);

  ASSERT_TRUE(kernel_.send_signal(pid, sim::kSigCkpt));
  EXPECT_TRUE(injector.drop_signal(pid, sim::kSigCkpt));
  EXPECT_FALSE(injector.drop_signal(pid, sim::kSigCkpt));  // already gone
  run_steps(kernel_, pid, 5);
  EXPECT_FALSE(delivered) << "dropped signal must never reach its action";

  ASSERT_TRUE(kernel_.send_signal(pid, sim::kSigCkpt));
  run_steps(kernel_, pid, 10);
  EXPECT_TRUE(delivered) << "an undropped signal still works";
}

// --- NodeInjector (cluster layer) -------------------------------------------

TEST(NodeInjector, FailStopBetweenCaptureAndStoreLosesLocalNotRemote) {
  cluster::Cluster cluster(2, cluster::NodeConfig{});
  cluster::Node& node = cluster.node(0);
  sim::register_standard_guests();
  const sim::Pid pid = node.kernel().spawn(sim::CounterGuest::kTypeName);
  run_steps(node.kernel(), pid, 5);

  // Capture succeeded — and then the node dies before the image is stored.
  const storage::CheckpointImage image =
      core::capture_kernel_level(node.kernel(), node.kernel().process(pid), {});
  NodeInjector injector(cluster);
  injector.fail_stop_now(0);
  EXPECT_FALSE(node.up());

  // The local store now fails — the checkpoint is simply lost — while the
  // same image stored remotely survives (the survey's Table 1 distinction).
  EXPECT_EQ(node.disk().store(image, nullptr), storage::kBadImageId);
  const storage::ImageId remote_id = cluster.remote_storage().store(image, nullptr);
  ASSERT_NE(remote_id, storage::kBadImageId);
  EXPECT_TRUE(cluster.remote_storage().load(remote_id, nullptr).has_value());
}

TEST(NodeInjector, ScheduledFailAndRepairFireOnTheClusterClock) {
  cluster::Cluster cluster(1, cluster::NodeConfig{});
  NodeInjector injector(cluster);
  injector.fail_stop_at(0, 5 * kMillisecond);
  injector.repair_at(0, 15 * kMillisecond);

  cluster.run_until(10 * kMillisecond, kMillisecond);
  EXPECT_FALSE(cluster.node(0).up());
  cluster.run_until(20 * kMillisecond, kMillisecond);
  EXPECT_TRUE(cluster.node(0).up());
}

}  // namespace
}  // namespace ckpt::inject
