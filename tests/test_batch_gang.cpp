#include <gtest/gtest.h>

#include "cluster/batch.hpp"
#include "core/gang.hpp"
#include "core/systemlevel.hpp"
#include "test_common.hpp"

namespace ckpt {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class BatchTest : public SimTest {
 protected:
  std::vector<std::unique_ptr<core::CheckpointEngine>> engines_;

  std::vector<core::CheckpointEngine*> make_engines(cluster::Cluster& cluster) {
    std::vector<core::CheckpointEngine*> out;
    for (int i = 0; i < cluster.size(); ++i) {
      sim::SimKernel& kernel = cluster.node(i).kernel();
      engines_.push_back(std::make_unique<core::KernelSignalEngine>(
          "sig", &cluster.remote_storage(), core::EngineOptions{}, kernel, sim::kSigCkpt,
          nullptr));
      out.push_back(engines_.back().get());
    }
    return out;
  }
};

TEST_F(BatchTest, SweepCheckpointsEveryJobProcess) {
  cluster::Cluster cluster(3, cluster::NodeConfig{});
  auto engines = make_engines(cluster);
  cluster::BatchManager manager(cluster, /*head=*/0, engines);

  cluster::BatchManager::Job job;
  job.name = "sim";
  for (int node = 0; node < 3; ++node) {
    for (int i = 0; i < 2; ++i) {
      const sim::Pid pid = cluster.node(node).kernel().spawn(sim::CounterGuest::kTypeName);
      job.procs.push_back({node, pid});
    }
  }
  manager.submit(job);
  cluster.run_until(20 * kMillisecond);

  const auto result = manager.checkpoint_all();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.checkpointed, 6u);
  EXPECT_GT(result.rpc_overhead, 0u);
}

TEST_F(BatchTest, HeadNodeFailureDisablesAllCheckpointing) {
  // The survey's centralization critique: the manager is a single point of
  // failure for the *whole cluster's* checkpointing.
  cluster::Cluster cluster(3, cluster::NodeConfig{});
  auto engines = make_engines(cluster);
  cluster::BatchManager manager(cluster, /*head=*/0, engines);
  cluster::BatchManager::Job job;
  const sim::Pid pid = cluster.node(1).kernel().spawn(sim::CounterGuest::kTypeName);
  job.procs.push_back({1, pid});
  manager.submit(job);
  cluster.run_until(10 * kMillisecond);

  cluster.fail_node(0);  // node 1 and its job are fine, but...
  const auto result = manager.checkpoint_all();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.checkpointed, 0u);
}

TEST_F(BatchTest, DownNodesAreSkippedNotFatal) {
  cluster::Cluster cluster(3, cluster::NodeConfig{});
  auto engines = make_engines(cluster);
  cluster::BatchManager manager(cluster, 0, engines);
  cluster::BatchManager::Job job;
  job.procs.push_back({1, cluster.node(1).kernel().spawn(sim::CounterGuest::kTypeName)});
  job.procs.push_back({2, cluster.node(2).kernel().spawn(sim::CounterGuest::kTypeName)});
  manager.submit(job);
  cluster.run_until(10 * kMillisecond);
  cluster.fail_node(2);
  const auto result = manager.checkpoint_all();
  EXPECT_EQ(result.checkpointed, 1u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_FALSE(result.ok);
}

class GangTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};
};

TEST_F(GangTest, OnlyActiveJobProgresses) {
  core::GangScheduler gang(kernel_, nullptr);
  std::vector<sim::Pid> job_a{kernel_.spawn(sim::CounterGuest::kTypeName),
                              kernel_.spawn(sim::CounterGuest::kTypeName)};
  std::vector<sim::Pid> job_b{kernel_.spawn(sim::CounterGuest::kTypeName)};
  gang.add_job("a", job_a);
  gang.add_job("b", job_b);

  gang.activate(0);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  const std::uint64_t a_then = gang.job_progress(0);
  const std::uint64_t b_then = gang.job_progress(1);
  EXPECT_GT(a_then, 0u);
  EXPECT_EQ(b_then, 0u);

  gang.activate(1);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  EXPECT_EQ(gang.job_progress(0), a_then);  // preempted
  EXPECT_GT(gang.job_progress(1), 0u);
}

TEST_F(GangTest, RotationSharesTheMachine) {
  core::GangScheduler gang(kernel_, nullptr);
  gang.add_job("a", {kernel_.spawn(sim::CounterGuest::kTypeName)});
  gang.add_job("b", {kernel_.spawn(sim::CounterGuest::kTypeName)});
  gang.rotate(10 * kMillisecond, 3);
  const std::uint64_t pa = gang.job_progress(0);
  const std::uint64_t pb = gang.job_progress(1);
  ASSERT_GT(pa, 0u);
  ASSERT_GT(pb, 0u);
  const double ratio = static_cast<double>(pa) / static_cast<double>(pb);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST_F(GangTest, CheckpointingPreemptionIsFailureSafe) {
  core::KernelSignalEngine engine("sig", &backend_, core::EngineOptions{}, kernel_,
                                  sim::kSigCkpt, nullptr);
  core::GangScheduler gang(kernel_, &engine);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  gang.add_job("a", {pid});
  gang.add_job("b", {kernel_.spawn(sim::CounterGuest::kTypeName)});
  run_steps(kernel_, pid, 5);
  ASSERT_TRUE(gang.activate(1));  // preempts job a with a checkpoint
  EXPECT_GE(engine.checkpoints_taken(pid), 1u);

  // Even if job a's process were lost now, its state is restorable.
  kernel_.terminate(kernel_.process(pid), 9);
  kernel_.reap(pid);
  const auto restored = engine.restart(kernel_, pid);
  EXPECT_TRUE(restored.ok) << restored.error;
}

}  // namespace
}  // namespace ckpt
