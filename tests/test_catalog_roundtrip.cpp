// Capture/restore fidelity property, over the whole catalog.
//
// For every one of the twelve surveyed mechanisms: launch a memory-churning
// guest through the mechanism's own launch procedure, random-walk it to
// seeded random sim times, snapshot it with the mechanism's capture options,
// restart the snapshot, and byte-compare the restored address space,
// register files and heap bounds against the image.  The walk continues on
// the original process between rounds, so each round checkpoints a
// different, rng-determined point of execution.
#include <gtest/gtest.h>

#include "core/capture.hpp"
#include "mechanisms/catalog.hpp"
#include "sim/guests.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace ckpt::mechanisms {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

std::uint64_t seed_for(const std::string& name) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;
}

bool registers_match(const storage::CheckpointImage& a, const storage::CheckpointImage& b) {
  if (a.threads.size() != b.threads.size()) return false;
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    if (!(a.threads[i].regs == b.threads[i].regs)) return false;
  }
  return true;
}

class CatalogRoundTrip : public SimTest,
                         public ::testing::WithParamInterface<std::string> {};

TEST_P(CatalogRoundTrip, RandomWalkCheckpointRestoresExactState) {
  const std::string name = GetParam();
  const CatalogEntry* entry = nullptr;
  for (const CatalogEntry& e : mechanism_catalog()) {
    if (e.name == name) entry = &e;
  }
  ASSERT_NE(entry, nullptr);

  sim::SimKernel kernel{1};
  storage::LocalDiskBackend local{sim::CostModel{}};
  storage::RemoteBackend remote{sim::CostModel{}};
  std::unique_ptr<Mechanism> mech =
      entry->factory(MechanismContext{&kernel, &local, &remote});

  util::Rng rng(seed_for(name));
  sim::WriterConfig config;
  config.array_bytes = 16 * 1024;
  config.writes_per_step = 8;
  config.seed = rng.next_u64();
  const sim::Pid pid = mech->launch(kernel, sim::DenseWriterGuest::kTypeName,
                                    config.encode(), sim::spawn_options_for_array(16 * 1024));
  ASSERT_NE(pid, sim::kNoPid);

  const core::CaptureOptions capture_options =
      mech->engine() != nullptr ? mech->engine()->options().capture : core::CaptureOptions{};

  std::uint64_t walk_target = 0;
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(name + " round " + std::to_string(round));
    // Walk to an rng-chosen sim time, then snapshot there.  run_steps takes
    // an absolute iteration target, so keep it strictly increasing.
    walk_target += 1 + rng.next_below(20);
    run_steps(kernel, pid, walk_target);
    const storage::CheckpointImage image =
        core::capture_kernel_level(kernel, kernel.process(pid), capture_options);
    EXPECT_EQ(image.pid, pid);
    EXPECT_GT(image.payload_bytes(), 0u);

    const core::RestartResult restarted = core::restart_from_image(kernel, image);
    ASSERT_TRUE(restarted.ok) << restarted.error;

    // Byte-compare the restored copy against the image it came from.
    sim::Process& copy = kernel.process(restarted.pid);
    const storage::CheckpointImage echo =
        core::capture_kernel_level(kernel, copy, capture_options);
    EXPECT_TRUE(core::images_equal_memory(echo, image)) << "address space diverged";
    EXPECT_TRUE(registers_match(echo, image)) << "register files diverged";
    EXPECT_EQ(echo.brk, image.brk);
    EXPECT_EQ(echo.heap_base, image.heap_base);

    // The copy must be runnable, not just byte-identical.
    const std::uint64_t before = copy.stats.guest_iterations;
    run_steps(kernel, restarted.pid, before + 3);
    EXPECT_GT(kernel.process(restarted.pid).stats.guest_iterations, before);

    // Retire the copy; the walk continues on the original.
    kernel.terminate(kernel.process(restarted.pid), 0);
    kernel.reap(restarted.pid);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, CatalogRoundTrip,
                         ::testing::Values("VMADump", "BPROC", "EPCKPT", "CRAK", "UCLik",
                                           "CHPOX", "ZAP", "BLCR", "LAM/MPI", "PsncR/C",
                                           "Software Suspend", "Checkpoint"),
                         [](const auto& info) {
                           std::string sanitized = info.param;
                           for (char& c : sanitized) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return sanitized;
                         });

}  // namespace
}  // namespace ckpt::mechanisms
