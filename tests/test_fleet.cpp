// FleetManager: heartbeat-based failure detection, CRAFT-style replacement
// from the spare pool, sharded/staggered autonomic commits, and the fleet
// determinism contract (byte-identical reports for any worker count).
//
// The 500+-node soak lives in test_fleet_soak.cpp (label `fleet`); this
// file is the fast tier-1 battery.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/fleet.hpp"
#include "obs/observer.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

class FleetTest : public SimTest {};

/// Small, fast fleet: commits every window so every scenario below has
/// images to re-seed from almost immediately.
FleetOptions small_options() {
  FleetOptions options;
  options.active_nodes = 12;
  options.spare_nodes = 3;
  options.shards = 3;
  options.seed = 11;
  options.policy.initial_interval = options.window;  // due every window
  options.policy.adapt_interval = false;
  options.guest_steps_min = 1;
  options.guest_steps_max = 3;
  options.array_bytes = 4 * 1024;
  return options;
}

/// Fail `node` on the cluster event clock `windows_in` windows from now.
void fail_later(FleetManager& fleet, int node, std::uint64_t windows_in) {
  const SimTime when =
      fleet.cluster().now() + static_cast<SimTime>(windows_in) * fleet.options().window;
  fleet.cluster().add_event(when, [node](Cluster& c) {
    if (c.node(node).up()) c.fail_node(node);
  });
}

TEST_F(FleetTest, SmallFleetCommitsDeterministically) {
  FleetTortureOptions torture;
  torture.failure_models.push_back(
      {FailureModel::Kind::kExponential, 40 * kSecond, 0.7, 0, 21});
  torture.heartbeat_drop_per_window = 0.02;
  torture.heartbeat_drop_beats = 5;
  torture.storage_fault_per_window = 0.2;

  FleetManager a(small_options());
  FleetManager b(small_options());
  a.arm_torture(torture);
  b.arm_torture(torture);
  const FleetReport ra = a.run(24);
  const FleetReport rb = b.run(24);

  EXPECT_GT(ra.commits_ok, 0u);
  EXPECT_TRUE(ra == rb);
  EXPECT_EQ(ra.digest(), rb.digest());
}

TEST_F(FleetTest, StaggeredCommitsBoundPerWindowLoad) {
  // 16 slots, 4 shards, a fixed 4-window interval: the stagger slices the
  // interval one window per shard, so any window commits exactly one
  // shard's 4 slots — never a 16-slot stampede.
  FleetOptions options;
  options.active_nodes = 16;
  options.spare_nodes = 2;
  options.shards = 4;
  options.policy.initial_interval = 4 * options.window;
  options.policy.adapt_interval = false;
  options.guest_steps_min = 1;
  options.guest_steps_max = 2;
  options.array_bytes = 4 * 1024;

  FleetManager fleet(options);
  const FleetReport report = fleet.run(8);

  EXPECT_EQ(fleet.interval_windows(), 4u);
  EXPECT_EQ(report.commits_scheduled, 16u * 2u);  // each slot due twice
  EXPECT_EQ(report.commits_ok, report.commits_scheduled);
  EXPECT_EQ(report.max_commits_one_window, 4u);
}

TEST_F(FleetTest, DetectorConfirmsInjectedFailureAndReplacesFromImage) {
  FleetManager fleet(small_options());
  fleet.run(3);  // every slot commits at least once
  ASSERT_GT(fleet.report().commits_ok, 0u);

  fail_later(fleet, 5, 1);
  const FleetReport report = fleet.run(10);

  EXPECT_EQ(report.failures_injected, 1u);
  EXPECT_EQ(report.confirmed_dead, 1u);
  EXPECT_EQ(report.false_confirms, 0u);
  EXPECT_EQ(report.replacements, 1u);
  EXPECT_EQ(report.reseeds_from_image, 1u);
  EXPECT_EQ(report.cold_starts, 0u);
  EXPECT_TRUE(report.ok()) << report.summary();

  // The slot moved onto the lowest spare and is tracked alive again.
  const int slot = 5;  // slot i starts on node i
  EXPECT_EQ(fleet.slot_node(slot), fleet.options().active_nodes);
  EXPECT_EQ(fleet.detector().state(fleet.slot_node(slot)),
            FailureDetector::NodeState::kAlive);

  // Detection is window-quantized heartbeat counting: a node failing at
  // time t in (beat_k, beat_k+1] is confirmed at beat_k + confirm*window,
  // so the latency lands in [(confirm-1), confirm] windows.
  ASSERT_EQ(report.detect_latency.size(), 1u);
  const SimTime window = fleet.options().window;
  EXPECT_GE(report.detect_latency.front(),
            (fleet.options().confirm_after_missed - 1) * window);
  EXPECT_LE(report.detect_latency.front(),
            fleet.options().confirm_after_missed * window);
  ASSERT_EQ(report.recover_latency.size(), 1u);
  EXPECT_GE(report.recover_latency.front(), report.detect_latency.front());
}

TEST_F(FleetTest, FalseSuspicionIsFencedNeverSplitBrained) {
  FleetManager fleet(small_options());
  fleet.run(3);

  // Drop enough beats from a perfectly healthy node to force a confirm.
  fleet.suppress_heartbeats(7, fleet.options().confirm_after_missed + 2);
  const FleetReport report = fleet.run(10);

  EXPECT_EQ(report.false_confirms, 1u);
  EXPECT_EQ(report.confirmed_dead, 1u);
  // The fence *is* a fail-stop: ground truth records it, so the old
  // incarnation can never commit again.
  EXPECT_EQ(report.failures_injected, 1u);
  EXPECT_FALSE(fleet.cluster().node(7).up());
  EXPECT_EQ(report.replacements, 1u);
  EXPECT_EQ(report.reseeds_from_image, 1u);
  // A false confirm costs work since the last checkpoint — never data.
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(FleetTest, StorageHomeFailureRetargetsReplicaAndScrubs) {
  FleetManager fleet(small_options());
  fleet.run(3);
  ASSERT_EQ(fleet.storage_home(0), 0);

  fail_later(fleet, 0, 1);  // node 0 anchors shard 0's local replica
  const FleetReport report = fleet.run(12);

  EXPECT_EQ(report.replacements, 1u);
  EXPECT_EQ(report.retargets, 1u);
  EXPECT_EQ(fleet.storage_home(0), fleet.slot_node(0));
  EXPECT_NE(fleet.storage_home(0), 0);
  // The scrub re-replicated committed history onto the fresh disk and the
  // shard kept committing for every survivor afterwards.
  EXPECT_GT(report.scrub_repairs, 0u);
  EXPECT_EQ(report.commits_failed, 0u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(FleetTest, SpareExhaustionQueuesSlotsUntilRepair) {
  FleetOptions options = small_options();
  options.spare_nodes = 1;
  FleetManager fleet(options);
  fleet.run(3);

  // Three concurrent failures against a one-deep pool: one slot replaces
  // immediately, two queue until their old nodes repair and re-enter the
  // pool as spares.
  for (int node : {2, 4, 6}) fail_later(fleet, node, 1);
  const SimTime repair_at = fleet.cluster().now() + 14 * fleet.options().window;
  for (int node : {2, 4}) {
    fleet.cluster().add_event(repair_at, [node](Cluster& c) {
      if (!c.node(node).up()) c.repair_node(node);
    });
  }
  const FleetReport report = fleet.run(30);

  EXPECT_EQ(report.confirmed_dead, 3u);
  EXPECT_EQ(report.replacements, 3u);
  EXPECT_GT(report.spares_exhausted_windows, 0u);
  EXPECT_EQ(report.pending_at_end, 0u);
  EXPECT_EQ(report.repairs, 2u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST_F(FleetTest, WorkerCountNeverChangesReportsMetricsOrTraces) {
  // The 1-vs-8 identity gate: pinned pools of different widths, observers
  // attached, torture armed — reports, digests, metrics snapshots and
  // trace exports must all be byte-identical.
  FleetTortureOptions torture;
  torture.failure_models.push_back(
      {FailureModel::Kind::kWeibull, 30 * kSecond, 0.7, 0, 33});
  torture.heartbeat_drop_per_window = 0.03;
  torture.heartbeat_drop_beats = 6;
  torture.storage_fault_per_window = 0.25;

  obs::Observer obs1;
  obs::Observer obs8;
  FleetOptions o1 = small_options();
  o1.workers = 1;
  o1.observer = &obs1;
  FleetOptions o8 = small_options();
  o8.workers = 8;
  o8.observer = &obs8;

  FleetManager f1(o1);
  FleetManager f8(o8);
  f1.arm_torture(torture);
  f8.arm_torture(torture);
  const FleetReport r1 = f1.run(20);
  const FleetReport r8 = f8.run(20);

  EXPECT_TRUE(r1 == r8);
  EXPECT_EQ(r1.digest(), r8.digest());
  EXPECT_EQ(obs1.metrics().snapshot_json(), obs8.metrics().snapshot_json());
  EXPECT_EQ(obs1.trace().export_chrome_json(), obs8.trace().export_chrome_json());
}

TEST_F(FleetTest, ReportSummaryAndMetricsNameTheOutcome) {
  obs::Observer observer;
  FleetOptions options = small_options();
  options.observer = &observer;
  FleetManager fleet(options);
  fail_later(fleet, 3, 1);
  const FleetReport report = fleet.run(12);

  const std::string summary = report.summary();
  EXPECT_NE(summary.find("replacements"), std::string::npos);
  EXPECT_EQ(observer.metrics().counter("fleet.replacements"), report.replacements);
  EXPECT_EQ(observer.metrics().counter("fleet.confirmed_dead"), report.confirmed_dead);
  EXPECT_EQ(observer.metrics().counter("fleet.windows"), report.windows);
}

}  // namespace
}  // namespace ckpt::cluster
