#include <gtest/gtest.h>

#include "core/hibernate.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class HibernateTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend swap_{sim::CostModel{}};
  storage::MemoryBackend ram_{sim::CostModel{}};
};

TEST_F(HibernateTest, FreezeSignalStopsEveryProcess) {
  HibernationManager manager(kernel_, &swap_, &ram_);
  std::vector<sim::Pid> pids;
  for (int i = 0; i < 3; ++i) pids.push_back(kernel_.spawn(sim::CounterGuest::kTypeName));
  kernel_.run_until(kernel_.now() + 5 * kMillisecond);

  const auto result = manager.hibernate();
  ASSERT_TRUE(result.ok) << result.error;
  for (sim::Pid pid : pids) {
    EXPECT_EQ(kernel_.process(pid).state, sim::TaskState::kStopped);
  }
  EXPECT_TRUE(manager.powered_down());
  EXPECT_EQ(result.images.size(), pids.size());
  EXPECT_GT(result.total_bytes, 0u);
  EXPECT_EQ(swap_.list().size(), pids.size());
}

TEST_F(HibernateTest, ResumeAfterHibernateContinuesProcesses) {
  HibernationManager manager(kernel_, &swap_, &ram_);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 7);
  const std::uint64_t counter =
      sim::CounterGuest::read_counter(kernel_, kernel_.process(pid));

  ASSERT_TRUE(manager.hibernate().ok);
  ASSERT_TRUE(manager.resume(kernel_));
  EXPECT_FALSE(manager.powered_down());
  // Same machine resume: the frozen process thaws and continues.
  run_steps(kernel_, pid, counter + 3);
  EXPECT_GT(sim::CounterGuest::read_counter(kernel_, kernel_.process(pid)), counter);
}

TEST_F(HibernateTest, ResumeOnFreshMachineAfterPowerLoss) {
  // The stronger scenario: the machine is replaced entirely; the swap disk
  // (local storage) survives and boots the processes elsewhere.
  HibernationManager manager(kernel_, &swap_, &ram_);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 9);
  const std::uint64_t counter =
      sim::CounterGuest::read_counter(kernel_, kernel_.process(pid));
  ASSERT_TRUE(manager.hibernate().ok);

  sim::SimKernel fresh;
  ASSERT_TRUE(manager.resume(fresh));
  ASSERT_NE(fresh.find_process(pid), nullptr);  // original pid restored
  EXPECT_EQ(sim::CounterGuest::read_counter(fresh, fresh.process(pid)), counter);
}

TEST_F(HibernateTest, StandbyImageLostOnPowerCycle) {
  HibernationManager manager(kernel_, &swap_, &ram_);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 3);
  ASSERT_TRUE(manager.standby().ok);
  EXPECT_GT(ram_.stored_bytes(), 0u);

  ram_.power_cycle();  // battery died
  sim::SimKernel fresh;
  EXPECT_FALSE(manager.resume(fresh));  // suspend-to-RAM does not survive
}

TEST_F(HibernateTest, StandbyIsFasterThanHibernate) {
  HibernationManager manager(kernel_, &swap_, &ram_);
  for (int i = 0; i < 2; ++i) kernel_.spawn(sim::CounterGuest::kTypeName);
  kernel_.run_until(kernel_.now() + 5 * kMillisecond);

  const auto to_disk = manager.hibernate();
  ASSERT_TRUE(to_disk.ok);
  manager.resume(kernel_);
  const auto to_ram = manager.standby();
  ASSERT_TRUE(to_ram.ok);
  // RAM image avoids disk latency + bandwidth.
  EXPECT_LT(to_ram.total_latency - to_ram.freeze_latency,
            to_disk.total_latency - to_disk.freeze_latency);
}

TEST_F(HibernateTest, KernelThreadsAreNotFrozen) {
  HibernationManager manager(kernel_, &swap_, &ram_);
  kernel_.spawn(sim::CounterGuest::kTypeName);
  bool ran_after = false;
  const sim::Pid kt = kernel_.spawn_kernel_thread("svc", [&](sim::SimKernel&) {
    ran_after = true;
    return sim::KStepResult::kSleep;
  });
  kernel_.run_until(kernel_.now() + 2 * kMillisecond);
  ASSERT_TRUE(manager.hibernate().ok);
  kernel_.wake(kt);
  kernel_.run_until(kernel_.now() + 2 * kMillisecond);
  EXPECT_TRUE(ran_after);  // the kernel itself stays alive
}

}  // namespace
}  // namespace ckpt::core
