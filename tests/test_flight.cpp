// Flight recorder (obs/flightrec) + journal kFlightRecord persistence: ring
// and open-span semantics, byte-exact serialization, newest-per-key journal
// recovery, post-mortem rendering, and the mid-commit-crash acceptance claim
// (the recovered black box names the commit that tore, byte-identically for
// any worker count).
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "obs/flightrec.hpp"
#include "storage/backend.hpp"
#include "storage/journal.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"

namespace ckpt::obs {
namespace {

using storage::ChargeFn;
using storage::CheckpointImage;
using storage::ImageId;
using storage::JournalMedia;
using storage::JournalOptions;
using storage::JournalRecoveryReport;
using storage::kBadImageId;
using storage::LocalDiskBackend;
using storage::LogStructuredBackend;

constexpr sim::VAddr kBase = 0x10000;

CheckpointImage make_image(std::uint64_t tag, std::size_t pages = 3) {
  CheckpointImage image;
  image.kind = storage::ImageKind::kFull;
  image.pid = 42;
  image.process_name = "flight";
  image.sequence = tag;
  image.taken_at = tag * 1000;
  image.threads.push_back(storage::ThreadImage{1, {}});
  image.threads[0].regs.pc = tag;
  storage::MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(kBase), static_cast<std::uint64_t>(pages),
                     sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::size_t p = 0; p < pages; ++p) {
    storage::PageImage page;
    page.page = seg.vma.first_page + p;
    page.data.resize(sim::kPageSize);
    for (std::size_t b = 0; b < page.data.size(); ++b) {
      page.data[b] = static_cast<std::byte>((tag * 131 + p * 17 + b) & 0xFF);
    }
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

// --- FlightRecorder unit ----------------------------------------------------

TEST(FlightRecorder, RingDropsOldestAndCountsEveryEviction) {
  FlightRecorder flight(4);
  for (std::uint64_t i = 0; i < 10; ++i) flight.instant(i * 100, "tick", i);
  EXPECT_EQ(flight.events().size(), 4u);
  EXPECT_EQ(flight.dropped(), 6u);
  EXPECT_EQ(flight.next_seq(), 10u);
  // Strictly oldest-first eviction: the survivors are the newest four.
  EXPECT_EQ(flight.events().front().seq, 6u);
  EXPECT_EQ(flight.events().back().seq, 9u);
  EXPECT_EQ(flight.events().back().value, 9u);
}

TEST(FlightRecorder, OpenSpanStackSurvivesRingEviction) {
  FlightRecorder flight(2);
  flight.span_begin(100, "window", 1);
  for (std::uint64_t i = 0; i < 8; ++i) flight.instant(200 + i, "noise", i);
  // The begin event left the ring long ago, but the phase stack is tracked
  // independently: the in-flight span still reports.
  ASSERT_EQ(flight.open_spans().size(), 1u);
  EXPECT_EQ(flight.open_spans().front().name, "window");
  EXPECT_EQ(flight.open_spans().front().since, 100u);
  flight.span_end(900, "window");
  EXPECT_TRUE(flight.open_spans().empty());
}

TEST(FlightRecorder, SpanEndClosesInnermostMatchingSpan) {
  FlightRecorder flight(16);
  flight.span_begin(1, "commit", 1);
  flight.span_begin(2, "encode", 0);
  flight.span_begin(3, "commit", 2);
  flight.span_end(4, "commit");
  ASSERT_EQ(flight.open_spans().size(), 2u);
  EXPECT_EQ(flight.open_spans()[0].name, "commit");
  EXPECT_EQ(flight.open_spans()[0].value, 1u);
  EXPECT_EQ(flight.open_spans()[1].name, "encode");
}

TEST(FlightRecorder, CountersKeepTheLastSamplePerName) {
  FlightRecorder flight(16);
  flight.counter(1, "commits", 1);
  flight.counter(2, "commits", 2);
  flight.counter(3, "pending", 5);
  ASSERT_EQ(flight.last_counters().size(), 2u);
  EXPECT_EQ(flight.last_counters().at("commits"), 2u);
  EXPECT_EQ(flight.last_counters().at("pending"), 5u);
}

TEST(FlightRecorder, SerializeRoundTripsExactly) {
  FlightRecorder flight(4);
  flight.span_begin(100, "commit", 7);
  flight.instant(150, "fault", 3);
  flight.counter(200, "commits", 12);
  for (std::uint64_t i = 0; i < 6; ++i) flight.instant(300 + i, "spin", i);

  const std::vector<std::byte> bytes = flight.serialize();
  const FlightRecorder back = FlightRecorder::deserialize(bytes);
  EXPECT_EQ(back, flight);
  EXPECT_EQ(back.serialize(), bytes);

  // Trailing bytes and version damage are malformed, not misparsed.
  std::vector<std::byte> trailing = bytes;
  trailing.push_back(std::byte{0});
  EXPECT_THROW((void)FlightRecorder::deserialize(trailing), util::SerializeError);
  std::vector<std::byte> wrong_version = bytes;
  wrong_version[0] ^= std::byte{0xFF};
  EXPECT_THROW((void)FlightRecorder::deserialize(wrong_version), util::SerializeError);
}

TEST(FlightRecorder, PostMortemRendersPhaseStackEventsAndCounters) {
  FlightRecorder flight(8);
  flight.counter(500, "commits", 3);
  flight.span_begin(1000, "commit", 4);
  const std::string report = flight.post_mortem();
  EXPECT_NE(report.find("in-flight: commit@1.000us"), std::string::npos);
  EXPECT_NE(report.find("begin commit=4"), std::string::npos);
  EXPECT_NE(report.find("counters: commits=3"), std::string::npos);
  // Deterministic: same state, same bytes.
  EXPECT_EQ(report, flight.post_mortem());
}

// --- Journal persistence ----------------------------------------------------

TEST(FlightJournal, NewestRecordPerKeySurvivesCrashAndRecovery) {
  const sim::CostModel costs{};
  LocalDiskBackend home(costs);
  LogStructuredBackend journal(&home, {});

  FlightRecorder a(8);
  a.instant(100, "old", 1);
  ASSERT_TRUE(journal.append_flight_record(1, a.serialize(), ChargeFn{}));
  a.instant(200, "new", 2);
  const std::vector<std::byte> newest_a = a.serialize();
  ASSERT_TRUE(journal.append_flight_record(1, newest_a, ChargeFn{}));
  FlightRecorder b(8);
  b.counter(300, "commits", 9);
  const std::vector<std::byte> newest_b = b.serialize();
  ASSERT_TRUE(journal.append_flight_record(2, newest_b, ChargeFn{}));
  ASSERT_NE(journal.store(make_image(0), ChargeFn{}), kBadImageId);

  // Pre-crash introspection already surfaces the newest per key.
  EXPECT_EQ(journal.flight_keys(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(journal.flight_record_of(1), std::optional(newest_a));

  // Adopt the media into a fresh backend: only the bytes survive.
  const JournalMedia media = journal.media_snapshot();
  LocalDiskBackend fresh_home(costs);
  LogStructuredBackend replayed(&fresh_home, {}, media);
  const JournalRecoveryReport report = replayed.recover(ChargeFn{});
  EXPECT_EQ(report.flight_recovered, 2u);
  EXPECT_EQ(replayed.flight_record_of(1), std::optional(newest_a));
  EXPECT_EQ(replayed.flight_record_of(2), std::optional(newest_b));
  EXPECT_FALSE(replayed.flight_record_of(3).has_value());
  // The commit alongside them recovered as usual.
  EXPECT_EQ(report.resident_recovered, 1u);
}

TEST(FlightJournal, TornFlightAppendKeepsThePriorRecordAuthoritative) {
  const sim::CostModel costs{};
  LocalDiskBackend home(costs);
  LogStructuredBackend journal(&home, {});

  FlightRecorder flight(8);
  flight.instant(100, "durable", 1);
  const std::vector<std::byte> durable = flight.serialize();
  ASSERT_TRUE(journal.append_flight_record(5, durable, ChargeFn{}));

  flight.instant(200, "torn", 2);
  journal.tear_next_append(10);  // tear inside the next flight record
  EXPECT_FALSE(journal.append_flight_record(5, flight.serialize(), ChargeFn{}));
  EXPECT_TRUE(journal.crashed());

  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  EXPECT_EQ(report.flight_recovered, 1u);
  EXPECT_EQ(journal.flight_record_of(5), std::optional(durable));
}

TEST(FlightJournal, ReclaimCompactsLiveFlightRecordsForward) {
  const sim::CostModel costs{};
  LocalDiskBackend home(costs);
  JournalOptions options;
  options.segment_bytes = 48 * 1024;
  options.segments = 8;
  LogStructuredBackend journal(&home, options);

  FlightRecorder flight(8);
  flight.counter(1, "commits", 0);
  const std::vector<std::byte> payload = flight.serialize();
  ASSERT_TRUE(journal.append_flight_record(3, payload, ChargeFn{}));

  // Enough commits to seal the record's segment, then drain + reclaim it.
  std::uint64_t stored = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    if (journal.store(make_image(i), ChargeFn{}) != kBadImageId) ++stored;
  }
  ASSERT_GT(stored, 0u);
  const LogStructuredBackend::MigrateReport report = journal.migrate(ChargeFn{});
  ASSERT_GT(report.segments_reclaimed, 0u);

  // The wiped segment's flight record hopped forward intact — both in the
  // live map and on the recovered media.
  EXPECT_EQ(journal.flight_record_of(3), std::optional(payload));
  const JournalMedia media = journal.media_snapshot();
  LocalDiskBackend fresh_home(costs);
  LogStructuredBackend replayed(&fresh_home, options, media);
  const JournalRecoveryReport recovered = replayed.recover(ChargeFn{});
  EXPECT_EQ(recovered.flight_recovered, 1u);
  EXPECT_EQ(replayed.flight_record_of(3), std::optional(payload));
}

// --- The mid-commit-crash acceptance claim ----------------------------------

struct CrashOutcome {
  std::string post_mortem;
  std::vector<std::byte> payload;
  std::vector<ImageId> survivors;
};

/// Persist an open "commit" span, tear the commit itself, recover from the
/// media bytes alone, and read the black box back.  Pure function of
/// `workers` — which must not appear in any output.
CrashOutcome crash_mid_commit(std::uint32_t workers) {
  util::ThreadPool pool(workers);
  const sim::CostModel costs{};
  LocalDiskBackend home(costs);
  JournalOptions options;
  options.pool = &pool;
  LogStructuredBackend journal(&home, options);

  FlightRecorder flight(16);
  for (std::uint64_t i = 0; i < 3; ++i) {
    flight.span_begin(i * 1000, "commit", i + 1);
    EXPECT_TRUE(journal.append_flight_record(7, flight.serialize(), ChargeFn{}));
    EXPECT_NE(journal.store(make_image(i), ChargeFn{}), kBadImageId);
    flight.span_end(i * 1000 + 500, "commit", 1);
    flight.counter(i * 1000 + 500, "commits", i + 1);
    EXPECT_TRUE(journal.append_flight_record(7, flight.serialize(), ChargeFn{}));
  }
  const std::vector<ImageId> committed = journal.list();

  // The fatal commit: its open span lands, the commit record never does.
  flight.span_begin(9000, "commit", 4);
  EXPECT_TRUE(journal.append_flight_record(7, flight.serialize(), ChargeFn{}));
  journal.tear_next_append(1234);
  EXPECT_EQ(journal.store(make_image(9), ChargeFn{}), kBadImageId);
  EXPECT_TRUE(journal.crashed());

  const JournalMedia media = journal.media_snapshot();
  LocalDiskBackend fresh_home(costs);
  LogStructuredBackend replayed(&fresh_home, options, media);
  const JournalRecoveryReport report = replayed.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  EXPECT_EQ(report.flight_recovered, 1u);

  CrashOutcome outcome;
  outcome.survivors = replayed.list();
  EXPECT_EQ(outcome.survivors, committed);
  const auto payload = replayed.flight_record_of(7);
  EXPECT_TRUE(payload.has_value());
  if (payload.has_value()) {
    outcome.payload = *payload;
    const FlightRecorder black_box = FlightRecorder::deserialize(*payload);
    // The final span is the injected crash point: commit #4, still open.
    EXPECT_EQ(black_box.open_spans().size(), 1u);
    if (!black_box.open_spans().empty()) {
      EXPECT_EQ(black_box.open_spans().back().name, "commit");
      EXPECT_EQ(black_box.open_spans().back().value, 4u);
      EXPECT_EQ(black_box.open_spans().back().since, 9000u);
    }
    EXPECT_EQ(black_box.events().back().kind, FlightEventKind::kSpanBegin);
    EXPECT_EQ(black_box.events().back().name, "commit");
    EXPECT_EQ(black_box.last_counters().at("commits"), 3u);
    outcome.post_mortem = black_box.post_mortem();
    EXPECT_NE(outcome.post_mortem.find("in-flight: commit@9.000us"),
              std::string::npos);
  }
  return outcome;
}

TEST(FlightJournal, MidCommitCrashPostMortemNamesTheTornCommitWorkerInvariant) {
  const CrashOutcome one = crash_mid_commit(1);
  const CrashOutcome eight = crash_mid_commit(8);
  EXPECT_EQ(one.post_mortem, eight.post_mortem);
  EXPECT_EQ(one.payload, eight.payload);
  EXPECT_EQ(one.survivors, eight.survivors);
  EXPECT_FALSE(one.post_mortem.empty());
}

}  // namespace
}  // namespace ckpt::obs
