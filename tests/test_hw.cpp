#include <gtest/gtest.h>

#include "hw/cacheline.hpp"
#include "test_common.hpp"

namespace ckpt::hw {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

TEST(CacheLineDirtySet, RecordsSpanningLines) {
  CacheLineDirtySet set;
  set.record(0, 1);  // one byte -> one line
  EXPECT_EQ(set.line_count(), 1u);
  set.record(60, 8);  // straddles lines 0 and 1
  EXPECT_EQ(set.line_count(), 2u);
  set.record(4096, 128);  // two more lines on another page
  EXPECT_EQ(set.line_count(), 4u);
  EXPECT_EQ(set.covered_pages(), 2u);
  set.clear();
  EXPECT_EQ(set.line_count(), 0u);
}

class HwTest : public SimTest {
 protected:
  sim::SimKernel kernel_;

  sim::Pid spawn_sparse() {
    sim::WriterConfig config;
    config.array_bytes = 256 * 1024;
    config.working_set_fraction = 0.05;
    config.writes_per_step = 8;
    return kernel_.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                         sim::spawn_options_for_array(config.array_bytes));
  }
};

TEST_F(HwTest, ReviveTracksLinesFinerThanPages) {
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  ReviveModel revive;
  revive.attach(proc);
  run_steps(kernel_, pid, 8);

  const std::uint64_t line_bytes = revive.dirty().dirty_bytes();
  const std::uint64_t page_bytes = revive.dirty().covered_pages() * sim::kPageSize;
  EXPECT_GT(line_bytes, 0u);
  // The §4.2 claim: cache-line granularity yields smaller deltas than the
  // page granularity available to the OS.
  EXPECT_LT(line_bytes, page_bytes);
  revive.detach(proc);
}

TEST_F(HwTest, ReviveTrackingIsFreeForTheCpu) {
  // Hardware tracking adds no faults, signals or syscalls to the app.
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  const auto faults_before = proc.stats.page_faults;
  const auto signals_before = proc.stats.signals_taken;
  ReviveModel revive;
  revive.attach(proc);
  run_steps(kernel_, pid, 10);
  EXPECT_EQ(proc.stats.page_faults, faults_before);
  EXPECT_EQ(proc.stats.signals_taken, signals_before);
  revive.detach(proc);
}

TEST_F(HwTest, ReviveRollbackRestoresPreCheckpointState) {
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  sim::Process& proc = kernel_.process(pid);
  const std::uint64_t counter_at_ckpt = sim::CounterGuest::read_counter(kernel_, proc);

  ReviveModel revive;
  revive.attach(proc);  // checkpoint interval begins here
  run_steps(kernel_, pid, 10);
  ASSERT_GT(sim::CounterGuest::read_counter(kernel_, proc), counter_at_ckpt);

  // A fault is detected: roll the memory back by replaying the undo log.
  const std::uint64_t restored = revive.rollback(proc);
  EXPECT_GT(restored, 0u);
  EXPECT_EQ(sim::CounterGuest::read_counter(kernel_, proc), counter_at_ckpt);
  revive.detach(proc);
}

TEST_F(HwTest, ReviveCommitFlushesLog) {
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  ReviveModel revive;
  revive.attach(proc);
  run_steps(kernel_, pid, 5);
  const std::uint64_t flushed = revive.commit_checkpoint();
  EXPECT_GT(flushed, 0u);
  EXPECT_EQ(revive.log_bytes(), 0u);
  EXPECT_EQ(revive.dirty().line_count(), 0u);
  revive.detach(proc);
}

TEST_F(HwTest, SafetyNetBuffersFillAndStall) {
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  SafetyNetModel net(/*buffer_capacity_bytes=*/2 * 1024);  // tiny buffers
  net.attach(proc);
  run_steps(kernel_, pid, 20);
  EXPECT_GT(net.overflow_stalls(), 0u);  // undersized buffers stall
  EXPECT_LE(net.buffer_occupancy(), net.buffer_capacity());
  net.validate_checkpoint();
  EXPECT_EQ(net.buffer_occupancy(), 0u);
  net.detach(proc);
}

TEST_F(HwTest, SafetyNetNeedsMoreHardwareThanRevive) {
  // The survey: "Safetynet requires more hardware resources than Revive".
  SafetyNetModel net;
  EXPECT_GT(net.dedicated_hardware_bytes(), ReviveModel::dedicated_hardware_bytes());
}

TEST_F(HwTest, GranularityOrdering) {
  // line delta <= block delta <= page delta for the same write stream.
  const sim::Pid pid = spawn_sparse();
  run_steps(kernel_, pid, 2);
  sim::Process& proc = kernel_.process(pid);
  proc.aspace->clear_dirty_bits();

  ReviveModel revive;
  revive.attach(proc);
  run_steps(kernel_, pid, 10);

  const std::uint64_t line_bytes = revive.dirty().dirty_bytes();
  const std::uint64_t page_bytes = proc.aspace->dirty_page_count() * sim::kPageSize;
  EXPECT_LE(line_bytes, page_bytes);
  revive.detach(proc);
}

}  // namespace
}  // namespace ckpt::hw
