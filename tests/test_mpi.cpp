#include <gtest/gtest.h>

#include "cluster/mpi.hpp"
#include "core/systemlevel.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

class MpiTest : public SimTest {
 protected:
  /// Build one kernel-thread engine per node, all storing to the cluster's
  /// remote backend (so images survive node failures).
  std::vector<std::unique_ptr<core::CheckpointEngine>> make_engines(Cluster& cluster) {
    std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
    for (int i = 0; i < cluster.size(); ++i) {
      sim::SimKernel& kernel = cluster.node(i).kernel();
      sim::KernelModule& module = kernel.load_module("blcr");
      engines.push_back(std::make_unique<core::KernelThreadEngine>(
          "blcr", &cluster.remote_storage(), core::EngineOptions{}, kernel,
          core::KernelThreadEngine::ThreadConfig{}, &module));
    }
    return engines;
  }

  static std::vector<core::CheckpointEngine*> raw(
      const std::vector<std::unique_ptr<core::CheckpointEngine>>& engines) {
    std::vector<core::CheckpointEngine*> out;
    for (const auto& e : engines) out.push_back(e.get());
    return out;
  }
};

TEST_F(MpiTest, RanksExchangeMessagesAndProgress) {
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, /*nranks=*/8, config);
  job.launch();
  cluster.run_until(100 * kMillisecond);
  EXPECT_GT(job.min_iteration(cluster), 5u);
  EXPECT_GT(job.fabric().total_sent(), 16u);
}

TEST_F(MpiTest, FabricDeliversWithLatency) {
  const std::uint64_t id = MpiFabric::create(2, /*latency=*/1 * kMillisecond);
  MpiFabric& fabric = MpiFabric::get(id);
  fabric.send(0, 1, 7, std::vector<std::byte>(64), /*now=*/0);
  EXPECT_FALSE(fabric.try_recv(1, 500 * kMicrosecond).has_value());  // in flight
  const auto message = fabric.try_recv(1, 2 * kMillisecond);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->src, 0);
  EXPECT_EQ(message->tag, 7u);
  MpiFabric::destroy(id);
}

TEST_F(MpiTest, CoordinatedCheckpointDrainsInFlightMessages) {
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, 8, config);
  job.launch();
  cluster.run_until(50 * kMillisecond);

  auto engines = make_engines(cluster);
  const auto result = job.coordinated_checkpoint(raw(engines));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(job.fabric().in_flight(), 0u);  // drained before images were cut
  EXPECT_FALSE(job.fabric().quiescing());   // job resumed
  EXPECT_GT(result.payload_bytes, 0u);

  // The job keeps going afterwards.
  const std::uint64_t progress = job.min_iteration(cluster);
  cluster.run_until(cluster.now() + 50 * kMillisecond);
  EXPECT_GT(job.min_iteration(cluster), progress);
}

TEST_F(MpiTest, FailedNodeRanksRestartElsewhereAndJobContinues) {
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, 8, config);
  job.launch();
  cluster.run_until(50 * kMillisecond);

  auto engines = make_engines(cluster);
  ASSERT_TRUE(job.coordinated_checkpoint(raw(engines)).ok);
  const std::uint64_t at_checkpoint = job.min_iteration(cluster);

  // Node 2 dies; its ranks are re-homed on node 1 from remote storage.
  cluster.fail_node(2);
  EXPECT_EQ(job.min_iteration(cluster), 0u);  // job is broken right now
  ASSERT_TRUE(job.restart_ranks_of_failed_node(raw(engines), /*failed=*/2, /*target=*/1));

  for (const auto& placement : job.placements()) EXPECT_NE(placement.node, 2);
  cluster.run_until(cluster.now() + 80 * kMillisecond);
  EXPECT_GT(job.min_iteration(cluster), at_checkpoint);
}

TEST_F(MpiTest, DrainWithZeroInFlightMessagesSucceedsImmediately) {
  // Edge case: a coordinated checkpoint requested when nothing is in
  // flight must not wait on the drain phase at all.
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, 4, config);
  job.launch();  // never stepped: no rank has sent anything yet

  auto engines = make_engines(cluster);
  ASSERT_EQ(job.fabric().in_flight(), 0u);
  const auto result = job.coordinated_checkpoint(raw(engines));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.messages_drained, 0u);
  EXPECT_EQ(result.drain_time, 0);
  EXPECT_FALSE(job.fabric().quiescing());
}

TEST_F(MpiTest, RankThatNeverSendsHasEmptyChannelState) {
  const std::uint64_t id = MpiFabric::create(3, /*latency=*/1 * kMillisecond);
  MpiFabric& fabric = MpiFabric::get(id);
  // Ranks 0 and 1 talk; rank 2 stays silent.
  fabric.send(0, 1, 1, std::vector<std::byte>(16), 0);
  fabric.send(1, 0, 1, std::vector<std::byte>(16), 0);
  EXPECT_FALSE(fabric.try_recv(2, 10 * kMillisecond).has_value());
  const ChannelCut cut = fabric.channel_cut(2);
  EXPECT_TRUE(cut.sent.empty());
  EXPECT_TRUE(cut.delivered.empty());
  // A silent rank contributes nothing to drain pressure either: delivering
  // the two real messages empties the fabric.
  EXPECT_TRUE(fabric.try_recv(0, 10 * kMillisecond).has_value());
  EXPECT_TRUE(fabric.try_recv(1, 10 * kMillisecond).has_value());
  EXPECT_EQ(fabric.in_flight(), 0u);
  MpiFabric::destroy(id);
}

TEST_F(MpiTest, QuiesceReentryIsRejectedNotDeadlocked) {
  Cluster cluster(2, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 16 * 1024;
  MpiJob job(cluster, 2, config);
  job.launch();
  auto engines = make_engines(cluster);

  // Simulate a coordinated checkpoint already holding the quiesce flag: a
  // second one must fail fast and leave the flag to its owner.
  job.fabric().set_quiescing(true);
  const auto result = job.coordinated_checkpoint(raw(engines));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("already in progress"), std::string::npos);
  EXPECT_TRUE(job.fabric().quiescing());  // owner's flag untouched
  job.fabric().set_quiescing(false);
  EXPECT_TRUE(job.coordinated_checkpoint(raw(engines)).ok);
}

TEST_F(MpiTest, ReceiverDropsDuplicateSequencesAfterRewind) {
  MpiFabric::FabricOptions options;
  options.latency = 0;
  options.sender_logging = true;
  const std::uint64_t id = MpiFabric::create(2, options);
  MpiFabric& fabric = MpiFabric::get(id);
  fabric.send(0, 1, 1, std::vector<std::byte>(8), 0);
  fabric.send(0, 1, 2, std::vector<std::byte>(8), 0);
  ASSERT_TRUE(fabric.try_recv(1, 1).has_value());
  ASSERT_TRUE(fabric.try_recv(1, 1).has_value());

  // Sender 0 rolls back to "nothing sent" and re-executes: the re-sends
  // carry the same sequence numbers and must be absorbed, not redelivered.
  fabric.rewind_for_restart(0, ChannelCut{});
  fabric.send(0, 1, 1, std::vector<std::byte>(8), 2);
  fabric.send(0, 1, 2, std::vector<std::byte>(8), 2);
  EXPECT_FALSE(fabric.try_recv(1, 5).has_value());
  EXPECT_EQ(fabric.duplicates_dropped(), 2u);
  EXPECT_EQ(fabric.sequence_violations(), 0u);
  MpiFabric::destroy(id);
}

TEST_F(MpiTest, DrainCostGrowsWithRankCount) {
  // Claim C12: coordination cost scales with the number of ranks.
  auto drain_time = [this](int nranks) {
    Cluster cluster(4, NodeConfig{});
    MpiRankGuest::Config config;
    config.array_bytes = 16 * 1024;
    MpiJob job(cluster, nranks, config);
    job.launch();
    cluster.run_until(50 * kMillisecond);
    auto engines = make_engines(cluster);
    const auto result = job.coordinated_checkpoint(raw(engines));
    EXPECT_TRUE(result.ok) << result.error;
    return result.total_time;
  };
  EXPECT_GT(drain_time(16), drain_time(2));
}

}  // namespace
}  // namespace ckpt::cluster
