#include <gtest/gtest.h>

#include "cluster/mpi.hpp"
#include "core/systemlevel.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

class MpiTest : public SimTest {
 protected:
  /// Build one kernel-thread engine per node, all storing to the cluster's
  /// remote backend (so images survive node failures).
  std::vector<std::unique_ptr<core::CheckpointEngine>> make_engines(Cluster& cluster) {
    std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
    for (int i = 0; i < cluster.size(); ++i) {
      sim::SimKernel& kernel = cluster.node(i).kernel();
      sim::KernelModule& module = kernel.load_module("blcr");
      engines.push_back(std::make_unique<core::KernelThreadEngine>(
          "blcr", &cluster.remote_storage(), core::EngineOptions{}, kernel,
          core::KernelThreadEngine::ThreadConfig{}, &module));
    }
    return engines;
  }

  static std::vector<core::CheckpointEngine*> raw(
      const std::vector<std::unique_ptr<core::CheckpointEngine>>& engines) {
    std::vector<core::CheckpointEngine*> out;
    for (const auto& e : engines) out.push_back(e.get());
    return out;
  }
};

TEST_F(MpiTest, RanksExchangeMessagesAndProgress) {
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, /*nranks=*/8, config);
  job.launch();
  cluster.run_until(100 * kMillisecond);
  EXPECT_GT(job.min_iteration(cluster), 5u);
  EXPECT_GT(job.fabric().total_sent(), 16u);
}

TEST_F(MpiTest, FabricDeliversWithLatency) {
  const std::uint64_t id = MpiFabric::create(2, /*latency=*/1 * kMillisecond);
  MpiFabric& fabric = MpiFabric::get(id);
  fabric.send(0, 1, 7, std::vector<std::byte>(64), /*now=*/0);
  EXPECT_FALSE(fabric.try_recv(1, 500 * kMicrosecond).has_value());  // in flight
  const auto message = fabric.try_recv(1, 2 * kMillisecond);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->src, 0);
  EXPECT_EQ(message->tag, 7u);
  MpiFabric::destroy(id);
}

TEST_F(MpiTest, CoordinatedCheckpointDrainsInFlightMessages) {
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, 8, config);
  job.launch();
  cluster.run_until(50 * kMillisecond);

  auto engines = make_engines(cluster);
  const auto result = job.coordinated_checkpoint(raw(engines));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(job.fabric().in_flight(), 0u);  // drained before images were cut
  EXPECT_FALSE(job.fabric().quiescing());   // job resumed
  EXPECT_GT(result.payload_bytes, 0u);

  // The job keeps going afterwards.
  const std::uint64_t progress = job.min_iteration(cluster);
  cluster.run_until(cluster.now() + 50 * kMillisecond);
  EXPECT_GT(job.min_iteration(cluster), progress);
}

TEST_F(MpiTest, FailedNodeRanksRestartElsewhereAndJobContinues) {
  Cluster cluster(4, NodeConfig{});
  MpiRankGuest::Config config;
  config.array_bytes = 32 * 1024;
  MpiJob job(cluster, 8, config);
  job.launch();
  cluster.run_until(50 * kMillisecond);

  auto engines = make_engines(cluster);
  ASSERT_TRUE(job.coordinated_checkpoint(raw(engines)).ok);
  const std::uint64_t at_checkpoint = job.min_iteration(cluster);

  // Node 2 dies; its ranks are re-homed on node 1 from remote storage.
  cluster.fail_node(2);
  EXPECT_EQ(job.min_iteration(cluster), 0u);  // job is broken right now
  ASSERT_TRUE(job.restart_ranks_of_failed_node(raw(engines), /*failed=*/2, /*target=*/1));

  for (const auto& placement : job.placements()) EXPECT_NE(placement.node, 2);
  cluster.run_until(cluster.now() + 80 * kMillisecond);
  EXPECT_GT(job.min_iteration(cluster), at_checkpoint);
}

TEST_F(MpiTest, DrainCostGrowsWithRankCount) {
  // Claim C12: coordination cost scales with the number of ranks.
  auto drain_time = [this](int nranks) {
    Cluster cluster(4, NodeConfig{});
    MpiRankGuest::Config config;
    config.array_bytes = 16 * 1024;
    MpiJob job(cluster, nranks, config);
    job.launch();
    cluster.run_until(50 * kMillisecond);
    auto engines = make_engines(cluster);
    const auto result = job.coordinated_checkpoint(raw(engines));
    EXPECT_TRUE(result.ok) << result.error;
    return result.total_time;
  };
  EXPECT_GT(drain_time(16), drain_time(2));
}

}  // namespace
}  // namespace ckpt::cluster
