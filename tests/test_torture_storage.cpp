// Replicated stable-storage torture soak (ctest label: torture-storage).
//
// Re-runs the crash/restart torture battery with the engines writing
// through a ReplicatedStore (atomic two-phase publish + retry + scrub),
// storage faults targeting one replica at a time.  The sharpened verdicts:
//
//   * a restart NEVER fails while >= 1 intact replica of a committed image
//     exists (zero unexpected_failures — the tentpole invariant);
//   * under a storage-fault-only schedule, single-replica faults are fully
//     absorbed: no checkpoint is ever lost and no restart is ever refused;
//   * every injected single-replica corruption is repaired by the
//     end-of-cycle scrub (zero scrub_failures);
//   * the whole soak replays bit-identically from the seed.
#include <gtest/gtest.h>

#include "inject/torture.hpp"

namespace ckpt::inject {
namespace {

constexpr std::uint64_t kSoakSeed = 0x5eed2026;
constexpr std::uint64_t kCyclesPerEngine = 110;

TortureOptions replicated_options(std::uint32_t replicas = 2) {
  TortureOptions options;
  options.seed = kSoakSeed;
  options.cycles = kCyclesPerEngine;
  options.replicated_storage = true;
  options.replicas = replicas;
  return options;
}

/// Storage faults only — the schedule the survivability claim is about.
std::vector<FaultPlan::Weighted> storage_only_mix() {
  return {
      {FaultKind::kNone, 2},          {FaultKind::kStoreReject, 2},
      {FaultKind::kTornStore, 2},     {FaultKind::kCorruptImage, 2},
      {FaultKind::kStorageOutage, 2},
  };
}

TEST(TortureStorage, FiveHundredFiftyCyclesAcrossTheBattery) {
  const std::vector<TortureTarget> targets = default_targets();
  ASSERT_EQ(targets.size(), 5u);

  TortureHarness harness(replicated_options());
  const std::vector<TortureReport> reports = harness.run_all(targets);

  std::uint64_t total_cycles = 0;
  std::uint64_t total_repairs = 0;
  for (const TortureReport& report : reports) {
    SCOPED_TRACE(report.summary());
    total_cycles += report.cycles;
    total_repairs += report.scrub_repairs;

    EXPECT_GT(report.checkpoints_ok, 0u) << report.engine;
    EXPECT_GT(report.restarts_ok, 0u) << report.engine;

    // The tentpole invariant: zero unrecoverable restarts while an intact
    // replica of a committed image exists, zero restarts from garbage, zero
    // divergences, and scrub healed every injected single-replica wound.
    EXPECT_EQ(report.divergences, 0u);
    EXPECT_EQ(report.corrupt_restarts, 0u);
    EXPECT_EQ(report.unexpected_failures, 0u);
    EXPECT_EQ(report.scrub_failures, 0u);
    EXPECT_TRUE(report.ok());
    for (const std::string& diagnostic : report.diagnostics) {
      ADD_FAILURE() << report.engine << ": " << diagnostic;
    }
  }
  EXPECT_GE(total_cycles, 550u);
  EXPECT_GT(total_repairs, 0u) << "scrub never repaired anything: injectors dead?";
}

TEST(TortureStorage, SingleReplicaStorageFaultsAreFullyAbsorbed) {
  // With >= 2 replicas and faults hitting one replica per cycle, the
  // storage layer must be transparent to the engine: every checkpoint
  // commits (retry + quorum) and every restart succeeds (failover).
  TortureOptions options = replicated_options();
  options.fault_mix = storage_only_mix();
  TortureHarness harness(options);
  for (const TortureReport& report : harness.run_all(default_targets())) {
    SCOPED_TRACE(report.summary());
    EXPECT_EQ(report.checkpoints_failed, 0u) << report.engine;
    EXPECT_EQ(report.restarts_refused, 0u) << report.engine;
    EXPECT_EQ(report.unexpected_failures, 0u) << report.engine;
    EXPECT_TRUE(report.ok());
  }
}

TEST(TortureStorage, UnreplicatedStorageLosesWhatReplicationKeeps) {
  // The control: the identical storage-fault schedule against a single
  // backend must visibly hurt (failed checkpoints or refused restarts) —
  // otherwise the absorption result above proves nothing.
  TortureOptions options = replicated_options();
  options.replicated_storage = false;
  options.fault_mix = storage_only_mix();
  TortureHarness harness(options);
  std::uint64_t lost = 0;
  for (const TortureReport& report : harness.run_all(default_targets())) {
    SCOPED_TRACE(report.summary());
    EXPECT_TRUE(report.ok());  // the harness model itself must stay sound
    lost += report.checkpoints_failed + report.restarts_refused;
  }
  EXPECT_GT(lost, 0u);
}

TEST(TortureStorage, ThreeWayReplicationHoldsTheSameInvariants) {
  TortureOptions options = replicated_options(/*replicas=*/3);
  options.fault_mix = storage_only_mix();
  TortureHarness harness(options);
  const TortureReport report = harness.run(TortureTarget{"CRAK", nullptr});
  SCOPED_TRACE(report.summary());
  EXPECT_EQ(report.checkpoints_failed, 0u);
  EXPECT_EQ(report.restarts_refused, 0u);
  EXPECT_TRUE(report.ok());
}

TEST(TortureStorage, ReproducibleFromSeed) {
  TortureOptions options = replicated_options();
  options.seed = 77;
  options.cycles = 40;

  const TortureTarget crak{"CRAK", nullptr};
  const TortureReport first = TortureHarness(options).run(crak);
  const TortureReport second = TortureHarness(options).run(crak);
  EXPECT_EQ(first, second) << "same seed must replay the identical soak";

  options.seed = 78;
  const TortureReport other = TortureHarness(options).run(crak);
  EXPECT_NE(first, other) << "different seeds must produce different schedules";
}

TEST(TortureStorage, WorkerCountNeverChangesTheSoak) {
  // The parallel commit pipeline must be invisible to the simulation: the
  // full battery replays bit-identically whether the store commits through
  // one worker or eight.
  TortureOptions options = replicated_options(/*replicas=*/3);
  options.cycles = 35;

  options.workers = 1;
  const std::vector<TortureReport> serial = TortureHarness(options).run_all(default_targets());
  options.workers = 8;
  const std::vector<TortureReport> pooled = TortureHarness(options).run_all(default_targets());

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << serial[i].engine;
  }
}

TEST(TortureStorage, DedupReplicatedSoakHoldsTheSameInvariants) {
  // The content-addressed store must not introduce any new violation class:
  // shared chunks mean one corrupt blob can sit under several images, and
  // the replicated closure-aware scrub must still heal every single-replica
  // wound before it can spread.
  TortureOptions options = replicated_options();
  options.dedup = true;
  const std::vector<TortureReport> reports =
      TortureHarness(options).run_all(default_targets());
  std::uint64_t total_repairs = 0;
  for (const TortureReport& report : reports) {
    SCOPED_TRACE(report.summary());
    total_repairs += report.scrub_repairs;
    EXPECT_GT(report.checkpoints_ok, 0u) << report.engine;
    EXPECT_GT(report.restarts_ok, 0u) << report.engine;
    EXPECT_EQ(report.divergences, 0u);
    EXPECT_EQ(report.corrupt_restarts, 0u);
    EXPECT_EQ(report.unexpected_failures, 0u);
    EXPECT_EQ(report.scrub_failures, 0u);
    EXPECT_TRUE(report.ok());
    for (const std::string& diagnostic : report.diagnostics) {
      ADD_FAILURE() << report.engine << ": " << diagnostic;
    }
  }
  EXPECT_GT(total_repairs, 0u) << "scrub never repaired anything: injectors dead?";
}

TEST(TortureStorage, DedupWorkerCountNeverChangesTheSoak) {
  // Dedup staging fans chunk writes across the pool; the per-replica charge
  // ledgers must keep the soak bit-identical for any worker count.
  TortureOptions options = replicated_options(/*replicas=*/3);
  options.cycles = 35;
  options.dedup = true;

  options.workers = 1;
  const std::vector<TortureReport> serial = TortureHarness(options).run_all(default_targets());
  options.workers = 8;
  const std::vector<TortureReport> pooled = TortureHarness(options).run_all(default_targets());

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << serial[i].engine;
  }
}

/// The journal schedule: every storage fault the replicated battery runs,
/// plus the two log-specific kinds (power-fail mid-append, silent log
/// corruption + crash + recovery).
std::vector<FaultPlan::Weighted> journal_mix() {
  std::vector<FaultPlan::Weighted> mix = storage_only_mix();
  mix.push_back({FaultKind::kNone, 2});
  mix.push_back({FaultKind::kKillProcess, 2});
  mix.push_back({FaultKind::kJournalTornAppend, 2});
  mix.push_back({FaultKind::kJournalCorrupt, 2});
  return mix;
}

TEST(TortureStorage, JournalReplicatedSoakHoldsTheSameInvariants) {
  // Append-commit mode: engines write through the LogStructuredBackend, the
  // migrator drains into the ReplicatedStore every cycle (while that cycle's
  // replica fault is still armed), and the log-specific faults join the
  // schedule.  A torn append must cost exactly the in-flight commit, a
  // corrupt+crash must cost at most the discarded suffix — never a
  // divergence, a restart from garbage, or a restart refusal while intact
  // state exists.
  TortureOptions options = replicated_options();
  options.journal = true;
  options.fault_mix = journal_mix();
  const std::vector<TortureReport> reports =
      TortureHarness(options).run_all(default_targets());
  std::uint64_t total_cycles = 0;
  std::uint64_t torn_appends = 0;
  std::uint64_t log_corruptions = 0;
  for (const TortureReport& report : reports) {
    SCOPED_TRACE(report.summary());
    total_cycles += report.cycles;
    const auto torn = report.faults.find(FaultKind::kJournalTornAppend);
    const auto corrupt = report.faults.find(FaultKind::kJournalCorrupt);
    torn_appends += torn == report.faults.end() ? 0 : torn->second;
    log_corruptions += corrupt == report.faults.end() ? 0 : corrupt->second;
    EXPECT_GT(report.checkpoints_ok, 0u) << report.engine;
    EXPECT_GT(report.restarts_ok, 0u) << report.engine;
    EXPECT_EQ(report.divergences, 0u);
    EXPECT_EQ(report.corrupt_restarts, 0u);
    EXPECT_EQ(report.unexpected_failures, 0u);
    EXPECT_EQ(report.scrub_failures, 0u);
    EXPECT_TRUE(report.ok());
    for (const std::string& diagnostic : report.diagnostics) {
      ADD_FAILURE() << report.engine << ": " << diagnostic;
    }
  }
  EXPECT_GE(total_cycles, 550u);
  EXPECT_GT(torn_appends, 0u) << "the schedule never tore an append";
  EXPECT_GT(log_corruptions, 0u) << "the schedule never corrupted the log";
}

TEST(TortureStorage, JournalWorkerCountNeverChangesTheSoak) {
  // The migrator pre-decodes resident images on the pool; the soak —
  // including every mid-cycle drain, crash and recovery — must replay
  // bit-identically for one worker and eight.
  TortureOptions options = replicated_options(/*replicas=*/3);
  options.cycles = 35;
  options.journal = true;
  options.fault_mix = journal_mix();

  options.workers = 1;
  const std::vector<TortureReport> serial = TortureHarness(options).run_all(default_targets());
  options.workers = 8;
  const std::vector<TortureReport> pooled = TortureHarness(options).run_all(default_targets());

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << serial[i].engine;
  }
}

/// The streaming schedule: every storage fault, plus process kills — the
/// fault skip-op draws land rejections and torn writes between chunk
/// appends, mid-stream.
std::vector<FaultPlan::Weighted> streaming_mix() {
  std::vector<FaultPlan::Weighted> mix = storage_only_mix();
  mix.push_back({FaultKind::kKillProcess, 2});
  return mix;
}

TEST(TortureStorage, StreamingSoakHoldsTheSameInvariants) {
  // Streaming-COW commits: chunks land on the replicas as they are encoded,
  // with rejections and torn writes detonating mid-stream.  The manifest is
  // written last, so a wounded stream must either fall back and commit
  // intact or fail without trace — never data loss while an intact replica
  // of a committed image exists.
  TortureOptions options = replicated_options();
  options.streaming = true;
  options.fault_mix = streaming_mix();
  const std::vector<TortureReport> reports =
      TortureHarness(options).run_all(default_targets());
  std::uint64_t total_cycles = 0;
  for (const TortureReport& report : reports) {
    SCOPED_TRACE(report.summary());
    total_cycles += report.cycles;
    EXPECT_GT(report.checkpoints_ok, 0u) << report.engine;
    EXPECT_GT(report.restarts_ok, 0u) << report.engine;
    EXPECT_EQ(report.divergences, 0u);
    EXPECT_EQ(report.corrupt_restarts, 0u);
    EXPECT_EQ(report.unexpected_failures, 0u);
    EXPECT_EQ(report.scrub_failures, 0u);
    EXPECT_TRUE(report.ok());
    for (const std::string& diagnostic : report.diagnostics) {
      ADD_FAILURE() << report.engine << ": " << diagnostic;
    }
  }
  EXPECT_GE(total_cycles, 550u);
}

TEST(TortureStorage, StreamingWorkerCountNeverChangesTheSoak) {
  // The streamed pipeline overlaps encode and fan-out on the pool; the
  // per-(chunk, replica) charge ledgers must keep the soak — including the
  // mid-stream fault fallbacks — bit-identical for one worker and eight.
  TortureOptions options = replicated_options(/*replicas=*/3);
  options.cycles = 35;
  options.streaming = true;
  options.fault_mix = streaming_mix();

  options.workers = 1;
  const std::vector<TortureReport> serial = TortureHarness(options).run_all(default_targets());
  options.workers = 8;
  const std::vector<TortureReport> pooled = TortureHarness(options).run_all(default_targets());

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << serial[i].engine;
  }
}

TEST(TortureStorage, StreamingRequiresFlatReplication) {
  // The streamed commit path appends into a flat ReplicatedStore; without
  // replication there is nothing to stream to, and dedup or journal would
  // silently fall back to the classic path, demoting the claim under test.
  TortureOptions options = replicated_options();
  options.streaming = true;
  options.replicated_storage = false;
  EXPECT_THROW(TortureHarness(options).run(TortureTarget{"CRAK", nullptr}),
               std::invalid_argument);
  options.replicated_storage = true;
  options.dedup = true;
  EXPECT_THROW(TortureHarness(options).run(TortureTarget{"CRAK", nullptr}),
               std::invalid_argument);
}

TEST(TortureStorage, JournalWithoutReplicationIsRejected) {
  // The migrator needs a durable home store to drain into; an unreplicated
  // journal would quietly demote the survivability claim under test.
  TortureOptions options = replicated_options();
  options.replicated_storage = false;
  options.journal = true;
  EXPECT_THROW(TortureHarness(options).run(TortureTarget{"CRAK", nullptr}),
               std::invalid_argument);
}

TEST(TortureStorage, DedupWithoutReplicationIsRejected) {
  // A shared chunk on a single media copy would let one silent corruption
  // damage several committed images at once, breaking the harness's
  // newest-image corruption model — the combination is refused outright.
  TortureOptions options = replicated_options();
  options.replicated_storage = false;
  options.dedup = true;
  EXPECT_THROW(TortureHarness(options).run(TortureTarget{"CRAK", nullptr}),
               std::invalid_argument);
}

TEST(TortureStorage, SingleReplicaConfigurationIsRejected) {
  TortureOptions options = replicated_options(/*replicas=*/1);
  EXPECT_THROW(TortureHarness(options).run(TortureTarget{"CRAK", nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ckpt::inject
