// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "sim/guests.hpp"
#include "sim/kernel.hpp"

namespace ckpt::test {

/// Fixture ensuring the standard guest types are registered.
class SimTest : public ::testing::Test {
 protected:
  void SetUp() override { sim::register_standard_guests(); }
};

/// Run `kernel` until `proc` has taken at least `n` guest steps (bounded).
inline void run_steps(sim::SimKernel& kernel, sim::Pid pid, std::uint64_t n,
                      SimTime limit = 10 * kSecond) {
  const SimTime deadline = kernel.now() + limit;
  kernel.run_while(
      [&] {
        const sim::Process* proc = kernel.find_process(pid);
        return proc != nullptr && proc->alive() && proc->stats.guest_iterations < n;
      },
      deadline);
}

}  // namespace ckpt::test
