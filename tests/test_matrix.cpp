// Property matrix: every externally-initiatable engine flavour must
// round-trip every guest workload exactly — checkpoint, kill, restart,
// byte-compare against an uninterrupted control run.
//
// This is the repository's strongest end-to-end property: if any engine,
// tracker, image-format or restore component loses a byte anywhere, some
// cell of this matrix fails.
#include <gtest/gtest.h>

#include "core/capture.hpp"
#include "core/systemlevel.hpp"
#include "core/userlevel.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::run_steps;

struct MatrixCase {
  const char* engine;
  const char* guest;
  bool incremental;
};

std::string case_name(const MatrixCase& c) {
  std::string out = std::string(c.engine) + "_" + c.guest;
  if (c.incremental) out += "_incr";
  for (char& ch : out) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return out;
}

class RoundTripMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  void SetUp() override { sim::register_standard_guests(); }

  static std::unique_ptr<CheckpointEngine> make_engine(const std::string& kind,
                                                       sim::SimKernel& kernel,
                                                       storage::StorageBackend* backend,
                                                       bool incremental) {
    EngineOptions options;
    if (incremental) {
      options.incremental = true;
      options.tracker_factory = [] { return std::make_unique<KernelWpTracker>(); };
      options.full_every = 100;
    }
    if (kind == "syscall") {
      return std::make_unique<SyscallEngine>("m", backend, std::move(options), kernel,
                                             SyscallEngine::TargetMode::kByPid, nullptr);
    }
    if (kind == "signal") {
      return std::make_unique<KernelSignalEngine>("m", backend, std::move(options), kernel,
                                                  sim::kSigCkpt, nullptr);
    }
    if (kind == "kthread") {
      sim::KernelModule& module = kernel.load_module("m");
      return std::make_unique<KernelThreadEngine>("m", backend, std::move(options), kernel,
                                                  KernelThreadEngine::ThreadConfig{},
                                                  &module);
    }
    if (kind == "userlevel") {
      UserLevelEngine::UserConfig config;
      config.mode = UserLevelEngine::Mode::kSignalHandler;
      return std::make_unique<UserLevelEngine>("m", backend, std::move(options), config);
    }
    throw std::logic_error("unknown engine kind");
  }

  static std::vector<std::byte> guest_config(const std::string& guest) {
    if (guest == sim::CounterGuest::kTypeName) return {};
    if (guest == sim::FileLoggerGuest::kTypeName) {
      return sim::FileLoggerGuest::Config{}.encode();
    }
    sim::WriterConfig config;
    config.array_bytes = 96 * 1024;
    config.working_set_fraction = 0.2;
    return config.encode();
  }

  static sim::SpawnOptions spawn_options(const std::string& guest) {
    if (guest == sim::CounterGuest::kTypeName ||
        guest == sim::FileLoggerGuest::kTypeName) {
      return sim::SpawnOptions{};
    }
    return sim::spawn_options_for_array(96 * 1024);
  }
};

TEST_P(RoundTripMatrix, CheckpointKillRestartIsExact) {
  const MatrixCase& param = GetParam();
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{kernel.costs()};
  auto engine = make_engine(param.engine, kernel, &backend, param.incremental);

  const sim::Pid pid =
      kernel.spawn(param.guest, guest_config(param.guest), spawn_options(param.guest));
  ASSERT_TRUE(engine->attach(kernel, pid));
  run_steps(kernel, pid, 6);

  // A couple of checkpoints with progress in between (exercises deltas).
  for (int i = 0; i < 3; ++i) {
    const CheckpointResult result = engine->request_checkpoint(kernel, pid);
    ASSERT_TRUE(result.ok) << param.engine << ": " << result.error;
    run_steps(kernel, pid, kernel.process(pid).stats.guest_iterations + 5);
  }
  const CheckpointResult last = engine->request_checkpoint(kernel, pid);
  ASSERT_TRUE(last.ok) << last.error;

  // The syscall and kernel-thread engines capture synchronously with the
  // requester: the image must equal the live state right after the request
  // returns.  The signal-delivered engines (kernel signal, user level)
  // capture at the target's own delivery point, after which the target
  // legitimately keeps stepping — exact equality with a later snapshot is
  // not a property they promise.
  const bool synchronous =
      std::string(param.engine) == "syscall" || std::string(param.engine) == "kthread";

  const auto truth =
      capture_kernel_level(kernel, kernel.process(pid), CaptureOptions{});
  const std::uint64_t live_iters = kernel.process(pid).stats.guest_iterations;

  // Crash, restart, verify.
  kernel.terminate(kernel.process(pid), 137);
  kernel.reap(pid);
  const RestartResult restored = engine->restart(kernel, pid);
  ASSERT_TRUE(restored.ok) << restored.error;
  const auto revived =
      capture_kernel_level(kernel, kernel.process(restored.pid), CaptureOptions{});

  if (synchronous) {
    EXPECT_TRUE(images_equal_memory(revived, truth)) << case_name(param);
  } else {
    // Restoration must be deterministic: a second materialisation from the
    // same chain is identical.
    sim::SimKernel other;
    const RestartResult again = engine->restart_on(other, pid);
    ASSERT_TRUE(again.ok) << again.error;
    const auto revived2 =
        capture_kernel_level(other, other.process(again.pid), CaptureOptions{});
    EXPECT_TRUE(images_equal_memory(revived, revived2)) << case_name(param);
  }
  (void)live_iters;

  // And it still runs.
  run_steps(kernel, restored.pid, 3);
  EXPECT_TRUE(kernel.process(restored.pid).alive());
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const char* engine : {"syscall", "signal", "kthread", "userlevel"}) {
    for (const char* guest :
         {sim::CounterGuest::kTypeName, sim::DenseWriterGuest::kTypeName,
          sim::SparseWriterGuest::kTypeName, sim::SweepWriterGuest::kTypeName,
          sim::FileLoggerGuest::kTypeName}) {
      cases.push_back(MatrixCase{engine, guest, false});
      // Incremental flavour for the system-level engines (user-level
      // incremental uses its own tracker path, covered elsewhere).
      if (std::string(engine) != "userlevel") {
        cases.push_back(MatrixCase{engine, guest, true});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEnginesAllGuests, RoundTripMatrix,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return case_name(info.param); });

}  // namespace
}  // namespace ckpt::core
