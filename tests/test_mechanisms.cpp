#include <gtest/gtest.h>

#include "mechanisms/catalog.hpp"
#include "mechanisms/probe.hpp"
#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::mechanisms {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

const CatalogEntry& entry_for(const std::string& name) {
  for (const CatalogEntry& entry : mechanism_catalog()) {
    if (entry.name == name) return entry;
  }
  throw std::runtime_error("no such mechanism: " + name);
}

struct Rig {
  sim::SimKernel kernel{1};
  storage::LocalDiskBackend local{sim::CostModel{}};
  storage::RemoteBackend remote{sim::CostModel{}};
  Rig() { sim::register_standard_guests(); }
  MechanismContext context() { return MechanismContext{&kernel, &local, &remote}; }
};

TEST(MechanismCatalog, HasAllTwelveInTableOrder) {
  const auto& catalog = mechanism_catalog();
  ASSERT_EQ(catalog.size(), 12u);
  const char* expected[] = {"VMADump", "BPROC",   "EPCKPT", "CRAK",
                            "UCLik",   "CHPOX",   "ZAP",    "BLCR",
                            "LAM/MPI", "PsncR/C", "Software Suspend", "Checkpoint"};
  for (std::size_t i = 0; i < catalog.size(); ++i) EXPECT_EQ(catalog[i].name, expected[i]);
}

// The headline reproduction check: every probed Table 1 cell must match the
// published table.
class Table1Row : public ::testing::TestWithParam<std::string> {};

TEST_P(Table1Row, ProbedBehaviourMatchesPaper) {
  const CatalogEntry& entry = entry_for(GetParam());
  const PaperRow expected = paper_row_for(entry);
  const ProbedRow measured = probe_mechanism(entry);
  EXPECT_EQ(measured.incremental, expected.incremental) << "incremental column";
  EXPECT_EQ(measured.transparency, expected.transparency) << "transparency column";
  EXPECT_EQ(measured.storage, expected.storage) << "storage column";
  EXPECT_EQ(measured.initiation, expected.initiation) << "initiation column";
  EXPECT_EQ(measured.module, expected.module) << "module column";
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, Table1Row,
                         ::testing::Values("VMADump", "BPROC", "EPCKPT", "CRAK", "UCLik",
                                           "CHPOX", "ZAP", "BLCR", "LAM/MPI", "PsncR/C",
                                           "Software Suspend", "Checkpoint"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(MechanismProbes, OnlyBlcrFamilyHandlesMultithreaded) {
  // §4: BLCR "unlike prior schemes, also checkpoints multithreaded
  // processes"; LAM/MPI inherits that; Checkpoint [5] targets them too.
  for (const CatalogEntry& entry : mechanism_catalog()) {
    const ProbedRow row = probe_mechanism(entry);
    const bool expect_mt = entry.name == "BLCR" || entry.name == "LAM/MPI" ||
                           entry.name == "Software Suspend";
    // Software Suspend freezes whole machines, thread count is irrelevant.
    // Checkpoint [5] supports threads but cannot be probed externally (it
    // is self-initiated), so the external probe reports false.
    if (entry.name == "Checkpoint") continue;
    EXPECT_EQ(row.multithreaded, expect_mt) << entry.name;
  }
}

TEST(MechanismProbes, ExternallyInitiatableMechanismsSurviveRestart) {
  for (const CatalogEntry& entry : mechanism_catalog()) {
    const ProbedRow row = probe_mechanism(entry);
    if (row.initiation != "user") continue;
    // ZAP (no stable storage) and Software Suspend (whole-machine) restart
    // differently; every other user-initiated mechanism must round-trip.
    if (entry.name == "ZAP" || entry.name == "Software Suspend") continue;
    EXPECT_TRUE(row.restart_verified) << entry.name;
  }
}

TEST(Vmadump, GuestSelfCheckpointsThroughSyscall) {
  Rig rig;
  VmadumpMechanism vmadump(rig.context());
  sim::SelfCheckpointGuest::Config config;
  config.syscall_name = vmadump.dump_syscall();
  config.interval_steps = 6;
  const sim::Pid pid = vmadump.launch(rig.kernel, sim::SelfCheckpointGuest::kTypeName,
                                      config.encode(), sim::SpawnOptions{});
  run_steps(rig.kernel, pid, 14);
  EXPECT_EQ(vmadump.engine()->checkpoints_taken(pid), 2u);
}

TEST(Bproc, MigratesProcessesBetweenNodes) {
  Rig rig;
  sim::SimKernel other(1, sim::CostModel{}, 99);
  other.hostname = "node1";
  BprocMechanism bproc(rig.context());
  const sim::Pid pid =
      bproc.launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
  run_steps(rig.kernel, pid, 6);
  const auto result = bproc.migrate(rig.kernel, other, pid);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.new_pid, pid);  // single system image keeps the pid
  run_steps(other, result.new_pid, 3);
}

TEST(Epckpt, RefusesProcessesNotLaunchedViaTool) {
  Rig rig;
  EpckptMechanism epckpt(rig.context());
  const sim::Pid plain = rig.kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(rig.kernel, plain, 2);
  EXPECT_FALSE(epckpt.checkpoint(rig.kernel, plain).ok);
  const sim::Pid traced =
      epckpt.launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
  run_steps(rig.kernel, traced, 2);
  EXPECT_TRUE(epckpt.checkpoint(rig.kernel, traced).ok);
}

TEST(Epckpt, LauncherToolImposesRuntimeOverhead) {
  Rig rig;
  EpckptMechanism epckpt(rig.context());
  const sim::Pid traced = epckpt.launch(rig.kernel, sim::FileLoggerGuest::kTypeName,
                                        sim::FileLoggerGuest::Config{}.encode(),
                                        sim::SpawnOptions{});
  const sim::Pid plain = rig.kernel.spawn(sim::FileLoggerGuest::kTypeName,
                                          sim::FileLoggerGuest::Config{}.encode());
  run_steps(rig.kernel, traced, 15);
  run_steps(rig.kernel, plain, 15);
  EXPECT_GT(rig.kernel.process(traced).stats.syscall_time,
            rig.kernel.process(plain).stats.syscall_time);
}

TEST(Crak, ChecksAndRestartsThroughDeviceFile) {
  Rig rig;
  CrakMechanism crak(rig.context());
  EXPECT_EQ(crak.device_path(), "/dev/crak");
  EXPECT_TRUE(rig.kernel.module_loaded("crak"));
  const sim::Pid pid =
      crak.launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
  run_steps(rig.kernel, pid, 5);
  const auto ckpt = crak.checkpoint(rig.kernel, pid);
  ASSERT_TRUE(ckpt.ok) << ckpt.error;
  rig.kernel.terminate(rig.kernel.process(pid), 1);
  rig.kernel.reap(pid);
  EXPECT_TRUE(crak.restart(rig.kernel, pid).ok);
}

TEST(Uclik, RestoresOriginalPidAndFileContents) {
  Rig rig;
  UclikMechanism uclik(rig.context());
  sim::FileLoggerGuest::Config guest_config;
  const sim::Pid pid = uclik.launch(rig.kernel, sim::FileLoggerGuest::kTypeName,
                                    guest_config.encode(), sim::SpawnOptions{});
  run_steps(rig.kernel, pid, 8);
  const auto ckpt = uclik.checkpoint(rig.kernel, pid);
  ASSERT_TRUE(ckpt.ok) << ckpt.error;

  // The file keeps growing, gets deleted, and the process dies.
  run_steps(rig.kernel, pid, 16);
  rig.kernel.vfs().unlink("/data/app.log");
  rig.kernel.terminate(rig.kernel.process(pid), 1);
  rig.kernel.reap(pid);

  const auto restored = uclik.restart(rig.kernel, pid);
  ASSERT_TRUE(restored.ok) << restored.error;
  EXPECT_EQ(restored.pid, pid);  // original pid back
  EXPECT_TRUE(rig.kernel.vfs().exists("/data/app.log"));  // contents resurrected
}

TEST(Chpox, RequiresProcRegistration) {
  Rig rig;
  ChpoxMechanism chpox(rig.context());
  const sim::Pid pid = rig.kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(rig.kernel, pid, 2);
  EXPECT_FALSE(chpox.checkpoint(rig.kernel, pid).ok);

  // Register by writing the pid into /proc/chpox, as a sysadmin would.
  sim::Process& admin = rig.kernel.process(rig.kernel.spawn(sim::CounterGuest::kTypeName));
  sim::UserApi api(rig.kernel, admin);
  const sim::Fd fd = api.sys_open("/proc/chpox", sim::kOpenWrite);
  ASSERT_GE(fd, 0);
  ASSERT_GT(api.sys_write(fd, std::to_string(pid)), 0);
  EXPECT_TRUE(chpox.checkpoint(rig.kernel, pid).ok);
}

TEST(Chpox, UsesSigSysAsKernelSignal) {
  Rig rig;
  ChpoxMechanism chpox(rig.context());
  EXPECT_TRUE(rig.kernel.has_kernel_signal(sim::kSigSys));
  const sim::Pid pid =
      chpox.launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
  run_steps(rig.kernel, pid, 3);
  // Raw kill -SIGSYS checkpoints instead of killing.
  rig.kernel.send_signal(pid, sim::kSigSys);
  rig.kernel.run_until(rig.kernel.now() + 10 * kMillisecond);
  EXPECT_TRUE(rig.kernel.process(pid).alive());
  EXPECT_GE(chpox.engine()->history().size(), 1u);
}

TEST(Blcr, RequiresInitializationPhase) {
  Rig rig;
  BlcrMechanism blcr(rig.context());
  const sim::Pid plain = rig.kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(rig.kernel, plain, 2);
  EXPECT_FALSE(blcr.checkpoint(rig.kernel, plain).ok);
  EXPECT_TRUE(blcr.initialize_process(rig.kernel, plain));
  EXPECT_TRUE(blcr.checkpoint(rig.kernel, plain).ok);
}

TEST(Blcr, HandlesMultithreadedProcesses) {
  Rig rig;
  BlcrMechanism blcr(rig.context());
  sim::SpawnOptions options;
  options.thread_count = 4;
  const sim::Pid pid =
      blcr.launch(rig.kernel, sim::CounterGuest::kTypeName, {}, options);
  run_steps(rig.kernel, pid, 3);
  const auto result = blcr.checkpoint(rig.kernel, pid);
  ASSERT_TRUE(result.ok) << result.error;

  // CRAK, by contrast, refuses.
  Rig rig2;
  CrakMechanism crak(rig2.context());
  const sim::Pid pid2 =
      crak.launch(rig2.kernel, sim::CounterGuest::kTypeName, {}, options);
  run_steps(rig2.kernel, pid2, 3);
  EXPECT_FALSE(crak.checkpoint(rig2.kernel, pid2).ok);
}

TEST(Zap, MigrationSurvivesConflictsUnlikeCrak) {
  Rig source;
  sim::SimKernel destination(1, sim::CostModel{}, 7);
  destination.hostname = "dst";

  ZapMechanism zap(source.context());
  const sim::Pid pid =
      zap.launch(source.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
  // Make the pid taken on the destination.
  while (!destination.pid_in_use(pid)) destination.spawn(sim::CounterGuest::kTypeName);
  run_steps(source.kernel, pid, 5);
  const auto result = zap.migrate(source.kernel, destination, pid);
  ASSERT_TRUE(result.ok) << result.error;
  run_steps(destination, result.new_pid, 3);
}

TEST(Zap, PodMembershipAddsSyscallOverhead) {
  Rig rig;
  ZapMechanism zap(rig.context());
  const sim::Pid pid =
      zap.launch(rig.kernel, sim::CounterGuest::kTypeName, {}, sim::SpawnOptions{});
  EXPECT_GT(rig.kernel.process(pid).syscall_extra_ns, 0u);
  EXPECT_NE(zap.pod_of(pid), 0u);
}

TEST(LamMpi, TransparentToAppButNotToLibrary) {
  Rig rig;
  LamMpiMechanism lam(rig.context());
  // Started via mpirun: checkpointable with no app changes...
  const sim::Pid rank = lam.launch_mpi_rank(rig.kernel, sim::CounterGuest::kTypeName, {},
                                            sim::SpawnOptions{});
  run_steps(rig.kernel, rank, 3);
  EXPECT_TRUE(lam.checkpoint(rig.kernel, rank).ok);
  // ...but the "library" registered handlers inside the process image.
  EXPECT_FALSE(rig.kernel.process(rank).library_handlers.empty());
  // A process not under mpirun cannot be checkpointed.
  const sim::Pid loner = rig.kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(rig.kernel, loner, 2);
  EXPECT_FALSE(lam.checkpoint(rig.kernel, loner).ok);
}

TEST(Psncrc, DumpsEverythingSoImagesAreBigger) {
  Rig rig1, rig2;
  PsncrcMechanism psnc(rig1.context());
  CrakMechanism crak(rig2.context());
  sim::FileLoggerGuest::Config config;
  const sim::Pid p1 = psnc.launch(rig1.kernel, sim::FileLoggerGuest::kTypeName,
                                  config.encode(), sim::SpawnOptions{});
  const sim::Pid p2 = crak.launch(rig2.kernel, sim::FileLoggerGuest::kTypeName,
                                  config.encode(), sim::SpawnOptions{});
  run_steps(rig1.kernel, p1, 10);
  run_steps(rig2.kernel, p2, 10);
  const auto big = psnc.checkpoint(rig1.kernel, p1);
  const auto small = crak.checkpoint(rig2.kernel, p2);
  ASSERT_TRUE(big.ok);
  ASSERT_TRUE(small.ok);
  EXPECT_GT(big.payload_bytes, small.payload_bytes);
}

TEST(Checkpoint05, SelfCheckpointsWithForkConsistency) {
  Rig rig;
  Checkpoint05Mechanism mechanism(rig.context());
  sim::SelfCheckpointGuest::Config config;
  config.syscall_name = mechanism.dump_syscall();
  config.interval_steps = 5;
  const sim::Pid pid = mechanism.launch(rig.kernel, sim::SelfCheckpointGuest::kTypeName,
                                        config.encode(), sim::SpawnOptions{});
  run_steps(rig.kernel, pid, 12);
  EXPECT_GE(mechanism.engine()->checkpoints_taken(pid), 2u);
  EXPECT_GT(rig.kernel.stats().forks, 0u);  // fork-based consistency really forked
}

TEST(Taxonomy, Figure1TreeContainsAllBranches) {
  register_taxonomy_entries();
  const std::string tree = core::TaxonomyRegistry::instance().render_tree();
  EXPECT_NE(tree.find("user-level"), std::string::npos);
  EXPECT_NE(tree.find("system-level"), std::string::npos);
  EXPECT_NE(tree.find("operating system"), std::string::npos);
  EXPECT_NE(tree.find("hardware"), std::string::npos);
  EXPECT_NE(tree.find("kernel thread"), std::string::npos);
  EXPECT_NE(tree.find("kernel-mode signal handler"), std::string::npos);
  EXPECT_NE(tree.find("system call"), std::string::npos);
  EXPECT_NE(tree.find("BLCR"), std::string::npos);
  EXPECT_NE(tree.find("ReVive"), std::string::npos);
  EXPECT_NE(tree.find("LD_PRELOAD"), std::string::npos);
}

}  // namespace
}  // namespace ckpt::mechanisms
