#include <gtest/gtest.h>

#include "core/capture.hpp"
#include "core/systemlevel.hpp"
#include "core/userlevel.hpp"
#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

// ---------------------------------------------------------------------------
// SyscallEngine
// ---------------------------------------------------------------------------

class SyscallEngineTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};
};

TEST_F(SyscallEngineTest, SelfInvokedCheckpointViaCurrentMacro) {
  SyscallEngine engine("vmadump", &backend_, EngineOptions{}, kernel_,
                       SyscallEngine::TargetMode::kCurrent, nullptr);
  sim::SelfCheckpointGuest::Config config;
  config.syscall_name = engine.dump_syscall();
  config.interval_steps = 10;
  const sim::Pid pid =
      kernel_.spawn(sim::SelfCheckpointGuest::kTypeName, config.encode());
  run_steps(kernel_, pid, 25);
  // Two self-initiated checkpoints (at steps 10 and 20).
  EXPECT_EQ(engine.history().size(), 2u);
  EXPECT_TRUE(engine.history()[0].ok);
  EXPECT_EQ(engine.checkpoints_taken(pid), 2u);
}

TEST_F(SyscallEngineTest, CurrentModeRefusesExternalInitiation) {
  SyscallEngine engine("vmadump", &backend_, EngineOptions{}, kernel_,
                       SyscallEngine::TargetMode::kCurrent, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  EXPECT_EQ(engine.request_checkpoint_async(kernel_, pid), 0u);
  EXPECT_FALSE(engine.supports_external_initiation());
}

TEST_F(SyscallEngineTest, ByPidModeCheckpointsExternally) {
  SyscallEngine engine("epckpt", &backend_, EngineOptions{}, kernel_,
                       SyscallEngine::TargetMode::kByPid, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.payload_bytes, 0u);
}

TEST_F(SyscallEngineTest, ByPidModeRejectsUnknownPid) {
  SyscallEngine engine("epckpt", &backend_, EngineOptions{}, kernel_,
                       SyscallEngine::TargetMode::kByPid, nullptr);
  EXPECT_EQ(engine.request_checkpoint_async(kernel_, 999), 0u);
}

TEST_F(SyscallEngineTest, SelfCheckpointAvoidsAddressSpaceSwitch) {
  // The `current` path runs behind the checkpointed process: its page
  // tables are already live.  An external by-pid capture must switch.
  SyscallEngine self_engine("vmadump", &backend_, EngineOptions{}, kernel_,
                            SyscallEngine::TargetMode::kCurrent, nullptr);
  sim::SelfCheckpointGuest::Config config;
  config.syscall_name = self_engine.dump_syscall();
  config.interval_steps = 5;
  const sim::Pid pid =
      kernel_.spawn(sim::SelfCheckpointGuest::kTypeName, config.encode());
  run_steps(kernel_, pid, 4);
  const std::uint64_t before = kernel_.stats().aspace_switches;
  run_steps(kernel_, pid, 6);  // crosses the self-checkpoint at step 5
  ASSERT_GE(self_engine.history().size(), 1u);
  // Only the process itself ran: no extra address-space switches beyond the
  // scheduler's own bookkeeping for this single process.
  EXPECT_EQ(kernel_.stats().aspace_switches, before);
}

// ---------------------------------------------------------------------------
// KernelSignalEngine
// ---------------------------------------------------------------------------

class KernelSignalEngineTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};
};

TEST_F(KernelSignalEngineTest, CheckpointOnSignalDelivery) {
  KernelSignalEngine engine("chpox", &backend_, EngineOptions{}, kernel_, sim::kSigCkpt,
                            nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 3);
  const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(kernel_.process(pid).alive());  // action replaced termination
}

TEST_F(KernelSignalEngineTest, RawKillAlsoTriggers) {
  KernelSignalEngine engine("chpox", &backend_, EngineOptions{}, kernel_, sim::kSigCkpt,
                            nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 3);
  // kill -CKPT <pid> from the command line, no engine involvement.
  kernel_.send_signal(pid, sim::kSigCkpt);
  kernel_.run_until(kernel_.now() + 5 * kMillisecond);
  EXPECT_EQ(engine.history().size(), 1u);
  EXPECT_TRUE(engine.history()[0].ok);
}

TEST_F(KernelSignalEngineTest, DeliveryDeferredUntilTargetScheduled) {
  KernelSignalEngine engine("sig", &backend_, EngineOptions{}, kernel_, sim::kSigCkpt,
                            nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok);
  // On an idle machine the target is scheduled at the next round, so the
  // deferral can be zero; it must never be negative, and the capture must
  // not precede the request.
  EXPECT_GE(result.started_at, result.initiated_at);
  EXPECT_GE(result.completed_at, result.started_at);
}

TEST_F(KernelSignalEngineTest, InitiationLatencyGrowsWithLoad) {
  // The survey: "there is no way to know when the signal handler will be
  // executed ... depends on how many processes are in the system".
  auto measure = [](int competing) -> SimTime {
    sim::register_standard_guests();
    sim::SimKernel kernel;
    storage::LocalDiskBackend backend{sim::CostModel{}};
    KernelSignalEngine engine("sig", &backend, EngineOptions{}, kernel, sim::kSigCkpt,
                              nullptr);
    const sim::Pid target = kernel.spawn(sim::CounterGuest::kTypeName);
    for (int i = 0; i < competing; ++i) kernel.spawn(sim::CounterGuest::kTypeName);
    kernel.run_until(kernel.now() + 10 * kMillisecond);
    const CheckpointResult result = engine.request_checkpoint(kernel, target);
    EXPECT_TRUE(result.ok);
    return result.initiation_latency();
  };
  const SimTime idle = measure(0);
  const SimTime loaded = measure(12);
  EXPECT_GT(loaded, 2 * idle);
}

TEST_F(KernelSignalEngineTest, StoppedTargetDefersUntilContinued) {
  KernelSignalEngine engine("sig", &backend_, EngineOptions{}, kernel_, sim::kSigCkpt,
                            nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  kernel_.stop_process(kernel_.process(pid));
  const std::uint64_t ticket = engine.request_checkpoint_async(kernel_, pid);
  ASSERT_NE(ticket, 0u);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  EXPECT_FALSE(engine.is_complete(ticket));  // never scheduled: never delivered
  kernel_.send_signal(pid, sim::kSigCont);
  kernel_.run_until(kernel_.now() + 20 * kMillisecond);
  EXPECT_TRUE(engine.is_complete(ticket));
}

// ---------------------------------------------------------------------------
// KernelThreadEngine: interfaces
// ---------------------------------------------------------------------------

class KThreadInterfaceTest : public SimTest,
                             public ::testing::WithParamInterface<KThreadInterface> {};

TEST_P(KThreadInterfaceTest, CheckpointThroughInterface) {
  sim::SimKernel kernel;
  storage::LocalDiskBackend backend{sim::CostModel{}};
  sim::KernelModule& module = kernel.load_module("kt");
  KernelThreadEngine::ThreadConfig config;
  config.interface = GetParam();
  KernelThreadEngine engine("kt", &backend, EngineOptions{}, kernel, config, &module);

  const sim::Pid pid = kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel, pid, 3);

  // Drive through the actual user-space interface, as a tool process would.
  sim::Process& tool = kernel.process(kernel.spawn(sim::CounterGuest::kTypeName));
  sim::UserApi api(kernel, tool);
  std::int64_t ticket = -1;
  switch (GetParam()) {
    case KThreadInterface::kDeviceIoctl: {
      const sim::Fd fd = api.sys_open(engine.device_path(), sim::kOpenRead);
      ASSERT_GE(fd, 0);
      ticket = api.sys_ioctl(fd, KernelThreadEngine::kIoctlCheckpoint,
                             static_cast<std::uint64_t>(pid));
      break;
    }
    case KThreadInterface::kProcFs: {
      const sim::Fd fd = api.sys_open(engine.proc_path(), sim::kOpenWrite);
      ASSERT_GE(fd, 0);
      const std::string text = std::to_string(pid);
      ticket = api.sys_write(fd, text);
      break;
    }
    case KThreadInterface::kSyscall:
      ticket = api.sys_custom("kt_request", static_cast<std::uint64_t>(pid));
      break;
    case KThreadInterface::kNone:
      GTEST_SKIP();
  }
  ASSERT_GT(ticket, 0);
  kernel.run_while([&] { return !engine.is_complete(static_cast<std::uint64_t>(ticket)); },
                   kernel.now() + 10 * kSecond);
  const CheckpointResult result = engine.result(static_cast<std::uint64_t>(ticket));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.payload_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Interfaces, KThreadInterfaceTest,
                         ::testing::Values(KThreadInterface::kDeviceIoctl,
                                           KThreadInterface::kProcFs,
                                           KThreadInterface::kSyscall),
                         [](const auto& info) {
                           switch (info.param) {
                             case KThreadInterface::kDeviceIoctl: return "ioctl";
                             case KThreadInterface::kProcFs: return "procfs";
                             case KThreadInterface::kSyscall: return "syscall";
                             default: return "none";
                           }
                         });

// ---------------------------------------------------------------------------
// KernelThreadEngine: consistency modes (the §4.1 argument)
// ---------------------------------------------------------------------------

struct ConsistencyCase {
  const char* name;
  ConsistencyMode mode;
  sim::SchedClass thread_class;
  int ncpus;
  bool expect_consistent;
};

class ConsistencyMatrix : public SimTest,
                          public ::testing::WithParamInterface<ConsistencyCase> {};

TEST_P(ConsistencyMatrix, SnapshotConsistency) {
  const ConsistencyCase& param = GetParam();
  sim::SimKernel kernel(param.ncpus);
  storage::LocalDiskBackend backend{sim::CostModel{}};
  sim::KernelModule& module = kernel.load_module("kt");

  EngineOptions options;
  options.consistency = param.mode;
  KernelThreadEngine::ThreadConfig config;
  config.pages_per_step = 4;  // slow copier: captures span many quanta
  config.sched = param.thread_class == sim::SchedClass::kFifo
                     ? sim::SchedParams{sim::SchedClass::kFifo, 50, 0, 0}
                     : sim::SchedParams{sim::SchedClass::kTimeshare, 0, 0, 0};
  KernelThreadEngine engine("kt", &backend, options, kernel, config, &module);

  sim::WriterConfig guest_config;
  guest_config.array_bytes = 64 * sim::kPageSize;
  const sim::Pid pid =
      kernel.spawn(sim::InvariantGuest::kTypeName, guest_config.encode(),
                   sim::spawn_options_for_array(guest_config.array_bytes));
  run_steps(kernel, pid, 3);

  const CheckpointResult ckpt = engine.request_checkpoint(kernel, pid);
  ASSERT_TRUE(ckpt.ok) << ckpt.error;

  // Materialize the image and check the cross-page invariant.
  const RestartResult restored = engine.restart(kernel, pid);
  ASSERT_TRUE(restored.ok) << restored.error;
  const bool consistent = sim::InvariantGuest::verify_consistency(
      kernel, kernel.process(restored.pid), guest_config.array_bytes);
  EXPECT_EQ(consistent, param.expect_consistent) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ConsistencyMatrix,
    ::testing::Values(
        // Stopping the target always yields a consistent image.
        ConsistencyCase{"stop_uni", ConsistencyMode::kStopTarget, sim::SchedClass::kFifo, 1,
                        true},
        ConsistencyCase{"stop_smp", ConsistencyMode::kStopTarget, sim::SchedClass::kFifo, 2,
                        true},
        // Fork-and-copy: the frozen COW child is consistent by construction.
        ConsistencyCase{"fork_uni", ConsistencyMode::kForkAndCopy, sim::SchedClass::kFifo,
                        1, true},
        ConsistencyCase{"fork_smp", ConsistencyMode::kForkAndCopy, sim::SchedClass::kFifo,
                        2, true},
        // Concurrent + SCHED_FIFO on a uniprocessor: the thread runs to
        // completion unpreempted, so nothing changes under it.
        ConsistencyCase{"conc_fifo_uni", ConsistencyMode::kConcurrent,
                        sim::SchedClass::kFifo, 1, true},
        // Concurrent + timeshare thread: the app runs between copy chunks.
        ConsistencyCase{"conc_ts_uni", ConsistencyMode::kConcurrent,
                        sim::SchedClass::kTimeshare, 1, false},
        // Concurrent on SMP: even a FIFO thread races the app on the other
        // CPU — the survey's multiprocessor warning.
        ConsistencyCase{"conc_fifo_smp", ConsistencyMode::kConcurrent,
                        sim::SchedClass::kFifo, 2, false}),
    [](const auto& info) { return info.param.name; });

TEST_F(SyscallEngineTest, ForkAndCopyLetsApplicationKeepRunning) {
  // Claim C7: stop-the-world halts the app for the whole capture; fork lets
  // it progress at COW cost.
  auto progress_during_checkpoint = [](ConsistencyMode mode) -> std::uint64_t {
    sim::register_standard_guests();
    sim::SimKernel kernel(2);
    storage::LocalDiskBackend backend{sim::CostModel{}};
    sim::KernelModule& module = kernel.load_module("kt");
    EngineOptions options;
    options.consistency = mode;
    KernelThreadEngine::ThreadConfig config;
    config.pages_per_step = 2;  // deliberately slow
    KernelThreadEngine engine("kt", &backend, options, kernel, config, &module);

    sim::WriterConfig wc;
    wc.array_bytes = 64 * sim::kPageSize;
    const sim::Pid pid = kernel.spawn(sim::DenseWriterGuest::kTypeName, wc.encode(),
                                      sim::spawn_options_for_array(wc.array_bytes));
    run_steps(kernel, pid, 3);
    const std::uint64_t before = kernel.process(pid).stats.guest_iterations;
    const CheckpointResult result = engine.request_checkpoint(kernel, pid);
    EXPECT_TRUE(result.ok);
    return kernel.process(pid).stats.guest_iterations - before;
  };
  const std::uint64_t stopped = progress_during_checkpoint(ConsistencyMode::kStopTarget);
  const std::uint64_t forked = progress_during_checkpoint(ConsistencyMode::kForkAndCopy);
  EXPECT_GT(forked, stopped);
}

// ---------------------------------------------------------------------------
// UserLevelEngine
// ---------------------------------------------------------------------------

class UserLevelEngineTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};
};

TEST_F(UserLevelEngineTest, SignalHandlerModeCheckpointsOnDemand) {
  UserLevelEngine::UserConfig config;
  config.mode = UserLevelEngine::Mode::kSignalHandler;
  UserLevelEngine engine("libckpt", &backend_, EngineOptions{}, config);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  run_steps(kernel_, pid, 3);
  const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.payload_bytes, 0u);
  EXPECT_GE(result.started_at, result.initiated_at);  // deferred like any signal
}

TEST_F(UserLevelEngineTest, RefusesWithoutLibraryLinked) {
  UserLevelEngine::UserConfig config;
  UserLevelEngine engine("libckpt", &backend_, EngineOptions{}, config);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  // No attach: the signal would kill the app; the engine refuses instead.
  EXPECT_EQ(engine.request_checkpoint_async(kernel_, pid), 0u);
}

TEST_F(UserLevelEngineTest, PeriodicAutomaticInitiation) {
  UserLevelEngine::UserConfig config;
  config.mode = UserLevelEngine::Mode::kSignalHandler;
  config.periodic_interval = 5 * kMillisecond;
  UserLevelEngine engine("esky", &backend_, EngineOptions{}, config);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  kernel_.run_until(kernel_.now() + 30 * kMillisecond);
  EXPECT_GE(engine.history().size(), 3u);
  for (const auto& result : engine.history()) EXPECT_TRUE(result.ok);
}

TEST_F(UserLevelEngineTest, SourceCodeModeViaLibraryCall) {
  UserLevelEngine::UserConfig config;
  config.mode = UserLevelEngine::Mode::kSourceCode;
  UserLevelEngine engine("libckpt", &backend_, EngineOptions{}, config);

  sim::SelfCheckpointGuest::Config guest_config;
  guest_config.syscall_name = "ckpt_now";
  guest_config.use_library = true;
  guest_config.interval_steps = 8;
  const sim::Pid pid =
      kernel_.spawn(sim::SelfCheckpointGuest::kTypeName, guest_config.encode());
  ASSERT_TRUE(engine.attach(kernel_, pid));
  run_steps(kernel_, pid, 20);
  EXPECT_EQ(engine.history().size(), 2u);
  EXPECT_FALSE(engine.supports_external_initiation());
}

TEST_F(UserLevelEngineTest, ReentrancyHazardDeadlocks) {
  UserLevelEngine::UserConfig config;
  config.mode = UserLevelEngine::Mode::kSignalHandler;
  UserLevelEngine engine("libckpt", &backend_, EngineOptions{}, config);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  run_steps(kernel_, pid, 2);
  // The signal lands while the app is inside malloc().
  kernel_.process(pid).in_nonreentrant_call = true;
  const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(engine.deadlocks(), 1u);
  EXPECT_EQ(kernel_.process(pid).state, sim::TaskState::kBlocked);  // hung
}

TEST_F(UserLevelEngineTest, PreloadModeInterposesFromStart) {
  UserLevelEngine::UserConfig config;
  config.mode = UserLevelEngine::Mode::kPreload;
  UserLevelEngine engine("preload", &backend_, EngineOptions{}, config);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  EXPECT_TRUE(kernel_.process(pid).interposer.has_value());
  run_steps(kernel_, pid, 3);
  const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_F(UserLevelEngineTest, RestartFromUserLevelImage) {
  UserLevelEngine::UserConfig config;
  UserLevelEngine engine("libckpt", &backend_, EngineOptions{}, config);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  run_steps(kernel_, pid, 10);
  const std::uint64_t counter =
      sim::CounterGuest::read_counter(kernel_, kernel_.process(pid));
  const CheckpointResult ckpt = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(ckpt.ok);

  kernel_.terminate(kernel_.process(pid), 1);
  kernel_.reap(pid);
  const RestartResult restored = engine.restart(kernel_, pid);
  ASSERT_TRUE(restored.ok) << restored.error;
  const std::uint64_t after =
      sim::CounterGuest::read_counter(kernel_, kernel_.process(restored.pid));
  // The checkpoint ran from the signal handler a moment after `counter` was
  // read; allow the steps in between.
  EXPECT_GE(after, counter);
  EXPECT_LE(after, counter + 5);
}

// ---------------------------------------------------------------------------
// Incremental engine integration
// ---------------------------------------------------------------------------

TEST_F(SyscallEngineTest, IncrementalEngineShrinksImages) {
  EngineOptions options;
  options.incremental = true;
  options.tracker_factory = [] { return std::make_unique<KernelWpTracker>(); };
  options.full_every = 100;
  SyscallEngine engine("inc", &backend_, options, kernel_,
                       SyscallEngine::TargetMode::kByPid, nullptr);

  sim::WriterConfig config;
  config.array_bytes = 512 * 1024;
  config.working_set_fraction = 0.03;
  const sim::Pid pid = kernel_.spawn(sim::SparseWriterGuest::kTypeName, config.encode(),
                                     sim::spawn_options_for_array(config.array_bytes));
  ASSERT_TRUE(engine.attach(kernel_, pid));
  run_steps(kernel_, pid, 5);

  const CheckpointResult full = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(full.ok);
  EXPECT_EQ(full.kind, storage::ImageKind::kFull);

  run_steps(kernel_, pid, 10);
  const CheckpointResult delta = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(delta.ok);
  EXPECT_EQ(delta.kind, storage::ImageKind::kIncremental);
  EXPECT_LT(delta.payload_bytes * 4, full.payload_bytes);

  // Restart from the chain reproduces live state exactly.
  run_steps(kernel_, pid, 15);
  const CheckpointResult last = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(last.ok);
  const auto truth = capture_kernel_level(kernel_, kernel_.process(pid), CaptureOptions{});
  kernel_.terminate(kernel_.process(pid), 1);
  kernel_.reap(pid);
  const RestartResult restored = engine.restart(kernel_, pid);
  ASSERT_TRUE(restored.ok);
  const auto revived =
      capture_kernel_level(kernel_, kernel_.process(restored.pid), CaptureOptions{});
  EXPECT_TRUE(images_equal_memory(revived, truth));
}

TEST_F(SyscallEngineTest, FullEveryBoundsChainLength) {
  EngineOptions options;
  options.incremental = true;
  options.tracker_factory = [] { return std::make_unique<PteScanTracker>(); };
  options.full_every = 3;
  SyscallEngine engine("inc", &backend_, options, kernel_,
                       SyscallEngine::TargetMode::kByPid, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  std::vector<storage::ImageKind> kinds;
  for (int i = 0; i < 7; ++i) {
    run_steps(kernel_, pid, kernel_.process(pid).stats.guest_iterations + 3);
    const CheckpointResult result = engine.request_checkpoint(kernel_, pid);
    ASSERT_TRUE(result.ok);
    kinds.push_back(result.kind);
  }
  // Pattern: full, incr, incr, full, incr, incr, full.
  EXPECT_EQ(kinds[0], storage::ImageKind::kFull);
  EXPECT_EQ(kinds[1], storage::ImageKind::kIncremental);
  EXPECT_EQ(kinds[3], storage::ImageKind::kFull);
  EXPECT_EQ(kinds[6], storage::ImageKind::kFull);
}

}  // namespace
}  // namespace ckpt::core
