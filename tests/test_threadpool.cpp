// ThreadPool / BufferPool semantics: the determinism contract the parallel
// checkpoint pipeline rests on — every index runs exactly once, joins are
// ordered, errors surface deterministically, nesting cannot deadlock, and
// worker count never changes results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/threadpool.hpp"

namespace ckpt::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " workers " << workers;
    }
  }
}

TEST(ThreadPool, WorkerCountIsClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).worker_count(), 1u);
  EXPECT_EQ(ThreadPool(1).worker_count(), 1u);
  EXPECT_EQ(ThreadPool(5).worker_count(), 5u);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, OrderedJoinGivesIdenticalResultsAcrossWorkerCounts) {
  auto compute = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(1000);
    pool.run(out.size(), [&](std::size_t i) { out[i] = i * i + 17 * i; });
    return out;
  };
  const auto serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(8));
}

TEST(ThreadPool, LowestIndexExceptionWinsRegardlessOfScheduling) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.run(64, [&](std::size_t i) {
        if (i == 7 || i == 55) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7");
    }
  }
}

TEST(ThreadPool, AllIndicesStillRunWhenOneThrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.run(hits.size(),
                        [&](std::size_t i) {
                          hits[i].fetch_add(1);
                          if (i == 3) throw std::runtime_error("x");
                        }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedRunFromATaskExecutesInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.run(8, [&](std::size_t) {
    pool.run(16, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::uint64_t total = 0;
  for (int job = 0; job < 100; ++job) {
    std::vector<std::uint64_t> out(17);
    pool.run(out.size(), [&](std::size_t i) { out[i] = i; });
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 100u * (16u * 17u / 2u));
}

TEST(ThreadPool, ParallelForFallsBackToInlineWithoutAPool) {
  std::vector<int> out(10, 0);
  parallel_for(nullptr, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(DefaultWorkers, HonorsAndClampsTheEnvironmentKnob) {
  ASSERT_EQ(setenv("CKPT_WORKERS", "3", 1), 0);
  EXPECT_EQ(default_workers(), 3u);
  ASSERT_EQ(setenv("CKPT_WORKERS", "0", 1), 0);
  EXPECT_EQ(default_workers(), 1u);  // clamped up
  ASSERT_EQ(setenv("CKPT_WORKERS", "9999", 1), 0);
  EXPECT_EQ(default_workers(), 64u);  // clamped down
  ASSERT_EQ(setenv("CKPT_WORKERS", "banana", 1), 0);
  const unsigned fallback = default_workers();  // unparsable: hardware fallback
  EXPECT_GE(fallback, 1u);
  EXPECT_LE(fallback, 8u);
  ASSERT_EQ(unsetenv("CKPT_WORKERS"), 0);
  EXPECT_GE(default_workers(), 1u);
}

TEST(BufferPool, RetainsCapacityAcrossAcquireRelease) {
  BufferPool pool;
  std::vector<std::byte> buffer = pool.acquire();
  buffer.resize(1 << 20);
  const std::size_t capacity = buffer.capacity();
  pool.release(std::move(buffer));
  EXPECT_EQ(pool.pooled(), 1u);

  std::vector<std::byte> again = pool.acquire();
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), capacity);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, DropsZeroCapacityAndBoundsRetention) {
  BufferPool pool;
  pool.release({});  // nothing worth keeping
  EXPECT_EQ(pool.pooled(), 0u);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> buffer(16);
    pool.release(std::move(buffer));
  }
  EXPECT_LE(pool.pooled(), 64u);
}

}  // namespace
}  // namespace ckpt::util
