// Log-structured journal (storage/journal): append-commit round-trips, group
// commit, torn-append and silent-corruption recovery, migrator drain + segment
// reclaim, chain/GC agreement over migrated images, scrub agreement across the
// drain→publish crash window, the engine append-commit wiring, and the
// exhaustive JournalCrashReplay harness (every record boundary + fuzzed
// intra-record offsets, worker-invariant).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/systemlevel.hpp"
#include "inject/replay.hpp"
#include "storage/backend.hpp"
#include "storage/chain.hpp"
#include "storage/journal.hpp"
#include "storage/replicated.hpp"
#include "test_common.hpp"
#include "util/threadpool.hpp"

namespace ckpt::storage {
namespace {

constexpr sim::VAddr kBase = 0x10000;

/// A full image whose pages derive deterministically from `tag`.  Page 0 is
/// constant across images so the home store's cross-image dedup (when on)
/// has something to share; the rest are tag-unique.
CheckpointImage make_image(std::uint64_t tag, std::size_t pages = 3) {
  CheckpointImage image;
  image.kind = ImageKind::kFull;
  image.pid = 42;
  image.process_name = "journaled";
  image.sequence = tag;
  image.taken_at = tag * 1000;
  image.threads.push_back(ThreadImage{1, {}});
  image.threads[0].regs.pc = tag;
  MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(kBase), static_cast<std::uint64_t>(pages),
                     sim::kProtRW, sim::VmaKind::kData, "data"};
  for (std::size_t p = 0; p < pages; ++p) {
    PageImage page;
    page.page = seg.vma.first_page + p;
    page.data.resize(sim::kPageSize);
    for (std::size_t b = 0; b < page.data.size(); ++b) {
      const std::uint64_t v = p == 0 ? b : (tag * 131 + p * 17 + b);
      page.data[b] = static_cast<std::byte>(v & 0xFF);
    }
    seg.pages.push_back(std::move(page));
  }
  image.segments.push_back(std::move(seg));
  return image;
}

class JournalTest : public ::testing::Test {
 protected:
  sim::CostModel costs_{};
  LocalDiskBackend home_{costs_};
};

// --- Append-commit basics ----------------------------------------------------

TEST_F(JournalTest, AppendCommitRoundTripIsBitIdentical) {
  LogStructuredBackend journal(&home_, {});
  const CheckpointImage original = make_image(7);
  const ImageId id = journal.store(original, ChargeFn{});
  ASSERT_NE(id, kBadImageId);
  const auto loaded = journal.load(id, ChargeFn{});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->serialize(), original.serialize());
  // Still resident: nothing touched the home store yet.
  EXPECT_EQ(journal.resident_images(), 1u);
  EXPECT_TRUE(home_.list().empty());
}

TEST_F(JournalTest, CommitsArePureSequentialAppends) {
  LogStructuredBackend journal(&home_, {});
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_NE(journal.store(make_image(i), ChargeFn{}), kBadImageId);
  }
  const std::vector<JournalRecordInfo>& ledger = journal.appended_records();
  ASSERT_FALSE(ledger.empty());
  EXPECT_EQ(ledger.front().type, JournalRecordType::kSegmentOpen);
  std::uint64_t expect_offset = 0;
  std::uint64_t commits = 0;
  for (const JournalRecordInfo& record : ledger) {
    EXPECT_EQ(record.log_offset, expect_offset) << "appends must be gapless";
    expect_offset += record.bytes;
    commits += record.type == JournalRecordType::kCommit ? 1 : 0;
  }
  EXPECT_EQ(commits, 4u);
  // Every commit group ends with its kCommit record.
  EXPECT_EQ(ledger.back().type, JournalRecordType::kCommit);
}

TEST_F(JournalTest, GroupCommitDefersTheSyncToOneChargePerGroup) {
  LogStructuredBackend journal(&home_, {});
  std::vector<SimTime> charges;
  const ChargeFn charge = [&](SimTime t) { charges.push_back(t); };

  // Ungrouped: each store pays its own device sync (the full disk latency).
  ASSERT_NE(journal.store(make_image(0), charge), kBadImageId);
  const auto syncs = [&] {
    return std::count(charges.begin(), charges.end(),
                      static_cast<SimTime>(costs_.disk_latency_ns));
  };
  EXPECT_EQ(syncs(), 1);

  // Grouped: three stores, still exactly one more sync at end_group().
  charges.clear();
  journal.begin_group();
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_NE(journal.store(make_image(i), charge), kBadImageId);
  }
  EXPECT_EQ(syncs(), 0) << "grouped stores must defer the sync";
  EXPECT_EQ(journal.end_group(charge), static_cast<SimTime>(costs_.disk_latency_ns));
  EXPECT_EQ(syncs(), 1);
  // An empty group charges nothing.
  journal.begin_group();
  EXPECT_EQ(journal.end_group(charge), 0u);
}

// --- Crash / recovery --------------------------------------------------------

TEST_F(JournalTest, TornAppendLosesOnlyTheInFlightCommit) {
  LogStructuredBackend journal(&home_, {});
  std::vector<std::vector<std::byte>> truths;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const CheckpointImage image = make_image(i);
    truths.push_back(image.serialize());
    ASSERT_NE(journal.store(image, ChargeFn{}), kBadImageId);
  }
  const std::vector<ImageId> before = journal.list();

  journal.tear_next_append(1234);  // normalized into the planned record stream
  EXPECT_EQ(journal.store(make_image(9), ChargeFn{}), kBadImageId);
  EXPECT_TRUE(journal.crashed());

  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  EXPECT_GT(report.bytes_discarded, 0u);
  EXPECT_EQ(report.recovered_ids, before);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto loaded = journal.load(before[i], ChargeFn{});
    ASSERT_TRUE(loaded.has_value()) << "image " << before[i];
    EXPECT_EQ(loaded->serialize(), truths[i]);
  }
}

TEST_F(JournalTest, RecoveryNeverReissuesADiscardedId) {
  LogStructuredBackend journal(&home_, {});
  ASSERT_NE(journal.store(make_image(0), ChargeFn{}), kBadImageId);
  journal.tear_next_append(40);
  const ImageId torn_would_be = 2;  // the id the torn store would have taken
  EXPECT_EQ(journal.store(make_image(1), ChargeFn{}), kBadImageId);
  journal.recover(ChargeFn{});
  const ImageId reissued = journal.store(make_image(2), ChargeFn{});
  ASSERT_NE(reissued, kBadImageId);
  // A chain still holding the discarded id must never resolve to this image.
  EXPECT_NE(reissued, torn_would_be);
  EXPECT_GT(reissued, torn_would_be);
}

TEST_F(JournalTest, RecoveryNeverReissuesIdsAfterRepeatedCrashes) {
  LogStructuredBackend journal(&home_, {});
  ASSERT_NE(journal.store(make_image(0), ChargeFn{}), kBadImageId);
  journal.tear_next_append(40);
  EXPECT_EQ(journal.store(make_image(1), ChargeFn{}), kBadImageId);
  journal.recover(ChargeFn{});

  // The first recovery opened a fresh id generation; hand one id out.
  const ImageId issued = journal.store(make_image(2), ChargeFn{});
  ASSERT_NE(issued, kBadImageId);

  // Second crash: corruption tears every commit of the new generation, so
  // the only survivor predates `issued`.  A recovery that derived the next
  // generation from the survivors alone would recompute the same generation
  // and hand `issued` to a different image — the durable floor stamped into
  // the segment-open records must prevent that.
  std::uint64_t target = 0;
  for (const JournalRecordInfo& record : journal.appended_records()) {
    if (record.type == JournalRecordType::kCommit) {
      target = record.log_offset + record.bytes / 2;  // the newest kCommit
    }
  }
  ASSERT_TRUE(journal.corrupt_log(target, 1));
  journal.simulate_crash();
  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  EXPECT_EQ(report.recovered_ids, (std::vector<ImageId>{1}));

  const ImageId reissued = journal.store(make_image(3), ChargeFn{});
  ASSERT_NE(reissued, kBadImageId);
  EXPECT_GT(reissued, issued) << "a discarded id must stay retired forever";
}

TEST_F(JournalTest, ImplausibleLengthFieldsAreRejectedNotTrusted) {
  LogStructuredBackend journal(&home_, {});
  ASSERT_NE(journal.store(make_image(0), ChargeFn{}), kBadImageId);
  ASSERT_NE(journal.store(make_image(1), ChargeFn{}), kBadImageId);
  // XOR 0xFF across the newest commit's body_len field (envelope bytes
  // 5..12): the corrupted length is near 2^64, and a parser that trusted it
  // would overflow its offset arithmetic before the CRC could veto.
  std::uint64_t target = 0;
  for (const JournalRecordInfo& record : journal.appended_records()) {
    if (record.type == JournalRecordType::kCommit) target = record.log_offset;
  }
  ASSERT_TRUE(journal.corrupt_log(target + 5, 8));
  journal.simulate_crash();
  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  EXPECT_EQ(report.recovered_ids, (std::vector<ImageId>{1}));
  EXPECT_TRUE(journal.load(1, ChargeFn{}).has_value());
}

TEST_F(JournalTest, TornSegmentOpenRecordIsAReachableCrashPoint) {
  JournalOptions options;
  options.segment_bytes = 16 * 1024;
  options.segments = 8;
  options.migrate_on_demand = false;

  // Dry run: find the first store whose group rolls into a fresh segment,
  // and how many record bytes (chunks + seal) it appends before the open
  // record begins — that is exactly the torn-append budget consumed when
  // the open record starts writing.
  LocalDiskBackend dry_home(costs_);
  LogStructuredBackend dry(&dry_home, options);
  std::uint64_t torn_store = 0;
  std::uint64_t budget = 0;
  bool found = false;
  for (std::uint64_t i = 0; i < 8 && !found; ++i) {
    ASSERT_NE(dry.store(make_image(i), ChargeFn{}), kBadImageId);
    std::uint64_t commits_seen = 0;
    std::uint64_t bytes_since_commit = 0;
    for (const JournalRecordInfo& record : dry.appended_records()) {
      if (!found && record.type == JournalRecordType::kSegmentOpen &&
          record.log_offset > 0) {
        torn_store = commits_seen;
        budget = bytes_since_commit;
        found = true;
      }
      if (record.type == JournalRecordType::kCommit) {
        ++commits_seen;
        bytes_since_commit = 0;
      } else {
        bytes_since_commit += record.bytes;
      }
    }
  }
  ASSERT_TRUE(found) << "geometry must force a mid-sequence rollover";

  // Replay the same sequence and tear 10 bytes into that open record.
  LocalDiskBackend home(costs_);
  LogStructuredBackend journal(&home, options);
  for (std::uint64_t i = 0; i < torn_store; ++i) {
    ASSERT_NE(journal.store(make_image(i), ChargeFn{}), kBadImageId);
  }
  journal.tear_next_append(budget + 10);
  EXPECT_EQ(journal.store(make_image(torn_store), ChargeFn{}), kBadImageId);
  EXPECT_TRUE(journal.crashed());

  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  std::vector<ImageId> expected;
  for (std::uint64_t i = 1; i <= torn_store; ++i) expected.push_back(i);
  EXPECT_EQ(report.recovered_ids, expected);
  for (const ImageId id : expected) {
    EXPECT_TRUE(journal.load(id, ChargeFn{}).has_value());
  }
  // The journal stays writable after losing the half-opened segment.
  ASSERT_NE(journal.store(make_image(99), ChargeFn{}), kBadImageId);
}

TEST_F(JournalTest, SilentCorruptionRecoversTheNewestFullyCommittedPrefix) {
  LogStructuredBackend journal(&home_, {});
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_NE(journal.store(make_image(i), ChargeFn{}), kBadImageId);
  }
  // Damage the third commit group's kCommit record: images 1 and 2 are the
  // newest fully-committed prefix; 3, 4 and 5 must all be discarded.
  std::uint64_t commit_seen = 0;
  std::uint64_t target_offset = 0;
  for (const JournalRecordInfo& record : journal.appended_records()) {
    if (record.type != JournalRecordType::kCommit) continue;
    if (++commit_seen == 3) {
      target_offset = record.log_offset + record.bytes / 2;
      break;
    }
  }
  ASSERT_TRUE(journal.corrupt_log(target_offset, 1));
  journal.simulate_crash();
  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_TRUE(report.tail_torn);
  EXPECT_EQ(report.recovered_ids, (std::vector<ImageId>{1, 2}));
  for (const ImageId id : report.recovered_ids) {
    const auto loaded = journal.load(id, ChargeFn{});
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->serialize(), make_image(id - 1).serialize());
  }
}

TEST_F(JournalTest, EraseSurvivesCrashAndRecovery) {
  LogStructuredBackend journal(&home_, {});
  const ImageId a = journal.store(make_image(0), ChargeFn{});
  const ImageId b = journal.store(make_image(1), ChargeFn{});
  ASSERT_NE(a, kBadImageId);
  ASSERT_NE(b, kBadImageId);
  EXPECT_TRUE(journal.erase(a));
  journal.simulate_crash();
  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_EQ(report.recovered_ids, (std::vector<ImageId>{b}));
  EXPECT_FALSE(journal.load(a, ChargeFn{}).has_value());
  EXPECT_TRUE(journal.load(b, ChargeFn{}).has_value());
}

// --- Migrator ----------------------------------------------------------------

TEST_F(JournalTest, MigratorDrainsIntoHomeAndReclaimsSegments) {
  JournalOptions options;
  options.segment_bytes = 24 * 1024;  // force several seal/open rollovers
  options.segments = 12;
  LogStructuredBackend journal(&home_, options);
  std::vector<ImageId> ids;
  std::vector<std::vector<std::byte>> truths;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const CheckpointImage image = make_image(i);
    truths.push_back(image.serialize());
    ids.push_back(journal.store(image, ChargeFn{}));
    ASSERT_NE(ids.back(), kBadImageId);
  }
  const std::uint64_t live_before = journal.log_live_bytes();

  const LogStructuredBackend::MigrateReport report = journal.migrate(ChargeFn{});
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.images_drained, ids.size());
  EXPECT_GT(report.segments_reclaimed, 0u);
  EXPECT_EQ(journal.resident_images(), 0u);
  EXPECT_EQ(journal.migrated_images(), ids.size());
  EXPECT_LT(journal.log_live_bytes(), live_before);
  EXPECT_EQ(home_.list().size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(journal.home_id_of(ids[i]).has_value());
    const auto loaded = journal.load(ids[i], ChargeFn{});
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->serialize(), truths[i]);
  }
}

TEST_F(JournalTest, OnDemandMigrationFreesSpaceWhenTheLogFills) {
  JournalOptions cramped;
  cramped.segment_bytes = 16 * 1024;
  cramped.segments = 3;  // less than two images' worth of log
  cramped.migrate_on_demand = false;
  {
    LogStructuredBackend journal(&home_, cramped);
    // Without on-demand migration the ring simply fills up.
    bool filled = false;
    for (std::uint64_t i = 0; i < 8 && !filled; ++i) {
      filled = journal.store(make_image(i), ChargeFn{}) == kBadImageId;
    }
    EXPECT_TRUE(filled);
  }
  cramped.migrate_on_demand = true;
  LocalDiskBackend fresh_home(costs_);
  LogStructuredBackend journal(&fresh_home, cramped);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_NE(journal.store(make_image(i), ChargeFn{}), kBadImageId) << "round " << i;
  }
  // Everything remains loadable, wherever it now lives.
  for (const ImageId id : journal.list()) {
    EXPECT_TRUE(journal.load(id, ChargeFn{}).has_value());
  }
}

TEST_F(JournalTest, MigrationSurvivesCrashAndRecovery) {
  LogStructuredBackend journal(&home_, {});
  const ImageId id = journal.store(make_image(3), ChargeFn{});
  ASSERT_NE(id, kBadImageId);
  ASSERT_TRUE(journal.migrate(ChargeFn{}).complete);
  journal.simulate_crash();
  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_EQ(report.migrated_recovered, 1u);
  EXPECT_EQ(report.orphans_reclaimed, 0u);
  const auto loaded = journal.load(id, ChargeFn{});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->serialize(), make_image(3).serialize());
}

TEST_F(JournalTest, MigratedEntriesKeepPidAndSequenceAcrossRecovery) {
  LogStructuredBackend journal(&home_, {});
  const ImageId id = journal.store(make_image(5), ChargeFn{});
  ASSERT_NE(id, kBadImageId);
  ASSERT_TRUE(journal.migrate(ChargeFn{}).complete);
  journal.simulate_crash();
  journal.recover(ChargeFn{});
  // The kMigrate record republishes pid/sequence, so the replayed entry
  // keeps the identity make_image stamped rather than silently defaulting.
  const auto identity = journal.identity_of(id);
  ASSERT_TRUE(identity.has_value());
  EXPECT_EQ(identity->first, sim::Pid{42});
  EXPECT_EQ(identity->second, 5u);
}

// --- Migrator / chain / GC interaction (satellite: live_set agreement) -------

TEST(JournalChain, MigratedChunksStayVisibleToTheLiveSetAcrossPruneAndGc) {
  sim::CostModel costs{};
  LocalDiskBackend local(costs);
  RemoteBackend remote(costs);
  ReplicatedOptions replicated_options;
  replicated_options.dedup = true;
  ReplicatedStore home({&local, &remote}, replicated_options);

  JournalOptions options;
  options.segment_bytes = 24 * 1024;
  options.segments = 12;
  LogStructuredBackend journal(&home, options);
  CheckpointChain chain(&journal);

  std::vector<std::vector<std::byte>> truths;
  for (std::uint64_t i = 0; i < 4; ++i) {
    CheckpointImage image = make_image(i);
    const ImageId id = chain.append(image, ChargeFn{});
    ASSERT_NE(id, kBadImageId);
    // append() assigned sequence/parent before storing: re-derive the truth
    // from what the chain actually persisted.
    truths.push_back(journal.load(id, ChargeFn{})->serialize());
  }

  // Drain: every chain entry now lives in the dedup home, and the chunks the
  // migrated manifests reference must be pinned there before any log segment
  // is reclaimed — the live_set walk re-verifies each entry by loading it.
  const LogStructuredBackend::MigrateReport drained = journal.migrate(ChargeFn{});
  EXPECT_TRUE(drained.complete);
  EXPECT_EQ(drained.images_drained, 4u);
  const std::vector<ImageId> live = chain.live_set(ChargeFn{});
  ASSERT_FALSE(live.empty());
  for (const ImageId id : live) {
    EXPECT_TRUE(journal.load(id, ChargeFn{}).has_value())
        << "live_set id " << id << " must stay loadable after the drain";
  }

  // Prune-vs-gc agreement: prune erases everything older than the newest
  // verified full image (through the journal, which forwards the erase to the
  // home), and gc may reclaim only chunks no surviving entry references.
  chain.prune(ChargeFn{});
  const GcReport gc = journal.gc(ChargeFn{});
  const std::vector<ImageId> kept = chain.live_set(ChargeFn{});
  EXPECT_EQ(kept.size(), 1u) << "all-full chain prunes to the newest image";
  const auto newest = chain.reconstruct_newest_surviving(ChargeFn{});
  ASSERT_TRUE(newest.has_value()) << "gc must never strand the restart path "
                                  << "(chunks reclaimed: " << gc.chunks_freed << ")";
  EXPECT_EQ(newest->serialize(), truths.back());
}

// --- Scrub / recovery agreement (satellite: drain→publish crash window) ------

TEST(JournalScrub, RecoveryAndScrubAgreeWhenACrashSplitsDrainFromPublish) {
  sim::CostModel costs{};
  LocalDiskBackend local(costs);
  RemoteBackend remote(costs);
  ReplicatedStore home({&local, &remote}, {});

  LogStructuredBackend journal(&home, {});
  const CheckpointImage image_a = make_image(0);
  const CheckpointImage image_b = make_image(1);
  const ImageId a = journal.store(image_a, ChargeFn{});
  const ImageId b = journal.store(image_b, ChargeFn{});
  ASSERT_NE(a, kBadImageId);
  ASSERT_NE(b, kBadImageId);

  // Crash in the window: the first image is durably committed in the home
  // store, but its kMigrate publish record never reaches the log.
  journal.crash_between_drain_and_publish();
  const LogStructuredBackend::MigrateReport drained = journal.migrate(ChargeFn{});
  EXPECT_FALSE(drained.complete);
  EXPECT_TRUE(journal.crashed());
  ASSERT_EQ(home.list().size(), 1u) << "the orphan must exist for this test to bite";

  // Recovery reconciles: the home copy is disowned (no publish record), so it
  // is erased; both images remain log-resident and loadable.  Scrub then sees
  // a consistent store — an intact-replica image the journal cannot reach
  // (data loss with an intact replica) must be impossible.
  const JournalRecoveryReport report = journal.recover(ChargeFn{});
  EXPECT_EQ(report.orphans_reclaimed, 1u);
  EXPECT_EQ(report.resident_recovered, 2u);
  EXPECT_TRUE(home.list().empty());

  const ScrubReport scrub = home.scrub(ChargeFn{});
  EXPECT_TRUE(scrub.clean());
  EXPECT_EQ(scrub.unrepairable, 0u);

  ASSERT_TRUE(journal.load(a, ChargeFn{}).has_value());
  ASSERT_TRUE(journal.load(b, ChargeFn{}).has_value());
  EXPECT_EQ(journal.load(a, ChargeFn{})->serialize(), image_a.serialize());
  EXPECT_EQ(journal.load(b, ChargeFn{})->serialize(), image_b.serialize());

  // The retried drain publishes both; scrub and the journal now agree on
  // exactly two committed, fully-replicated images.
  const LogStructuredBackend::MigrateReport retried = journal.migrate(ChargeFn{});
  EXPECT_TRUE(retried.complete);
  EXPECT_EQ(retried.images_drained, 2u);
  EXPECT_EQ(home.list().size(), 2u);
  EXPECT_TRUE(home.scrub(ChargeFn{}).clean());
  for (const ImageId id : {a, b}) {
    const auto home_id = journal.home_id_of(id);
    ASSERT_TRUE(home_id.has_value());
    EXPECT_GE(home.intact_replicas(*home_id), 1u);
  }
}

// --- Group-commit determinism (satellite: mirrors PipelineDeterminism) -------

struct GroupRun {
  JournalMedia media;
  std::vector<ImageId> ids;
  std::vector<ImageId> recovered;
  std::vector<SimTime> charges;
  std::vector<std::vector<std::byte>> home_blobs;

  friend bool operator==(const GroupRun&, const GroupRun&) = default;
};

/// Drive an identical group-committed, faulted workload — three "engines"
/// sharing each group, a mid-run drain, a torn append, recovery, one more
/// commit — recording everything observable.
GroupRun drive_group_commit(util::ThreadPool* pool) {
  sim::CostModel costs{};
  LocalDiskBackend home(costs);
  JournalOptions options;
  options.segment_bytes = 24 * 1024;
  options.segments = 8;
  options.pool = pool;
  LogStructuredBackend journal(&home, options);

  GroupRun run;
  const ChargeFn charge = [&run](SimTime t) { run.charges.push_back(t); };
  std::uint64_t tag = 0;
  for (std::uint64_t round = 0; round < 3; ++round) {
    journal.begin_group();
    for (std::uint64_t engine = 0; engine < 3; ++engine) {
      run.ids.push_back(journal.store(make_image(tag++), charge));
    }
    journal.end_group(charge);
    if (round == 1) journal.migrate(charge);
  }
  journal.tear_next_append(777);
  EXPECT_EQ(journal.store(make_image(tag++), charge), kBadImageId);
  run.recovered = journal.recover(charge).recovered_ids;
  run.ids.push_back(journal.store(make_image(tag), charge));

  run.media = journal.media_snapshot();
  for (const ImageId id : home.list()) {
    auto blob = home.read_blob(id, nullptr);
    run.home_blobs.push_back(blob.value_or(std::vector<std::byte>{}));
  }
  return run;
}

TEST(JournalDeterminism, GroupCommitIsBitIdenticalForAnyWorkerCount) {
  util::ThreadPool one(1), four(4), eight(8);
  const GroupRun baseline = drive_group_commit(&one);
  EXPECT_EQ(drive_group_commit(&four), baseline);
  EXPECT_EQ(drive_group_commit(&eight), baseline);
}

// --- Engine wiring (EngineOptions::append_commit) ----------------------------

class JournalEngineTest : public ckpt::test::SimTest {
 protected:
  sim::SimKernel kernel_;
  sim::CostModel costs_{};
  LocalDiskBackend home_{costs_};
};

TEST_F(JournalEngineTest, AppendCommitModeDrainsTheJournalAtTheCommitPoint) {
  LogStructuredBackend journal(&home_, {});
  core::EngineOptions options;
  options.append_commit = true;
  core::SyscallEngine engine("epckpt", &journal, options, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ckpt::test::run_steps(kernel_, pid, 5);
  const core::CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok) << result.error;
  // The commit landed in the log and the post-commit drain migrated it home.
  EXPECT_EQ(journal.resident_images(), 0u);
  EXPECT_EQ(journal.migrated_images(), 1u);
  EXPECT_EQ(home_.list().size(), 1u);
}

TEST_F(JournalEngineTest, AppendCommitIsIgnoredForNonJournalBackends) {
  core::EngineOptions options;
  options.append_commit = true;
  core::SyscallEngine engine("epckpt", &home_, options, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  ckpt::test::run_steps(kernel_, pid, 5);
  const core::CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(home_.list().size(), 1u);
}

// --- The crash-point replay harness (the headline deliverable) ---------------

TEST(JournalCrashReplay, RecoversExactlyTheNewestFullyCommittedPrefixEverywhere) {
  inject::CrashReplayOptions options;  // 32 commits, 220 fuzzed offsets
  inject::JournalCrashReplay harness(options);
  const inject::CrashReplayReport report = harness.run();
  SCOPED_TRACE(report.summary());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GE(report.commits_recorded, 30u);
  EXPECT_GE(report.fuzz_cases, 200u);
  // One truncation per record boundary plus the empty log.
  EXPECT_GT(report.boundary_cases, report.commits_recorded);
  EXPECT_GT(report.torn_tails, 0u);
  EXPECT_GT(report.images_reverified, 0u);
  EXPECT_GT(report.migrations_checked, 0u);
}

TEST(JournalCrashReplay, ReportIsIdenticalForOneAndEightWorkers) {
  inject::CrashReplayOptions one;
  one.workers = 1;
  inject::CrashReplayOptions eight;
  eight.workers = 8;
  const inject::CrashReplayReport report_one = inject::JournalCrashReplay(one).run();
  const inject::CrashReplayReport report_eight = inject::JournalCrashReplay(eight).run();
  SCOPED_TRACE(report_one.summary());
  EXPECT_EQ(report_one, report_eight);
  EXPECT_TRUE(report_one.ok());
}

// --- Construction guards -----------------------------------------------------

TEST_F(JournalTest, ConstructorRejectsBadGeometry) {
  EXPECT_THROW(LogStructuredBackend(nullptr, {}), std::invalid_argument);
  JournalOptions one_segment;
  one_segment.segments = 1;
  EXPECT_THROW(LogStructuredBackend(&home_, one_segment), std::invalid_argument);
  JournalOptions tiny;
  tiny.segment_bytes = 16;
  EXPECT_THROW(LogStructuredBackend(&home_, tiny), std::invalid_argument);
  JournalOptions options;
  JournalMedia mismatched;
  mismatched.segment_bytes = options.segment_bytes / 2;
  EXPECT_THROW(LogStructuredBackend(&home_, options, mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace ckpt::storage
