// RecoveryManager: the degradation ladder, structured RecoveryReports, the
// data-loss-with-intact-replica gate, and post-failover self-healing.
#include <gtest/gtest.h>

#include "cluster/recovery.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;

class RecoveryTest : public SimTest {
 protected:
  Cluster cluster_{2, NodeConfig{}};
  RecoveryManager manager_{cluster_};

  RecoveryManager::JobId launch_and_checkpoint(int home, std::uint64_t steps = 50) {
    const RecoveryManager::JobId job =
        manager_.launch(home, sim::CounterGuest::kTypeName, {});
    ckpt::test::run_steps(cluster_.node(home).kernel(), manager_.pid_of(job), steps);
    EXPECT_TRUE(manager_.checkpoint(job));
    return job;
  }

  static const RecoveryAttempt* find_attempt(const RecoveryReport& report,
                                             RecoveryStep step) {
    for (const RecoveryAttempt& attempt : report.attempts) {
      if (attempt.step == step) return &attempt;
    }
    return nullptr;
  }
};

TEST_F(RecoveryTest, LocalRungRestoresWhenHomeDiskIsReachable) {
  // The process dies but the node survives: the newest committed image is
  // readable from the local replica — the ladder's fast path.
  const auto job = launch_and_checkpoint(0);
  sim::SimKernel& kernel = cluster_.node(0).kernel();
  kernel.terminate(kernel.process(manager_.pid_of(job)), 9);
  kernel.reap(manager_.pid_of(job));

  const RecoveryReport report = manager_.recover(job);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.from_image);
  EXPECT_FALSE(report.cold_started);
  EXPECT_FALSE(report.data_loss_with_intact_replica);
  const RecoveryAttempt* local = find_attempt(report, RecoveryStep::kLocalNewest);
  ASSERT_NE(local, nullptr);
  EXPECT_TRUE(local->ok);
  EXPECT_EQ(report.attempts.size(), 1u);  // no deeper rung was needed
  EXPECT_TRUE(kernel.process(report.restored_pid).alive());
}

TEST_F(RecoveryTest, RemoteRungSurvivesHomeNodeFailure) {
  const auto job = launch_and_checkpoint(0);
  cluster_.fail_node(0);

  const RecoveryReport report = manager_.recover(job);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.from_image);
  EXPECT_EQ(report.target_node, 1);
  EXPECT_EQ(manager_.home_of(job), 1);
  EXPECT_FALSE(report.data_loss_with_intact_replica);

  const RecoveryAttempt* local = find_attempt(report, RecoveryStep::kLocalNewest);
  ASSERT_NE(local, nullptr);
  EXPECT_FALSE(local->ok);  // home disk went down with the node
  const RecoveryAttempt* remote = find_attempt(report, RecoveryStep::kRemoteNewest);
  ASSERT_NE(remote, nullptr);
  EXPECT_TRUE(remote->ok);
  EXPECT_TRUE(cluster_.node(1).kernel().process(report.restored_pid).alive());
}

TEST_F(RecoveryTest, OlderSurvivingRungFallsBackPastCorruptNewest) {
  const auto job = launch_and_checkpoint(0);
  ckpt::test::run_steps(cluster_.node(0).kernel(), manager_.pid_of(job), 100);
  ASSERT_TRUE(manager_.checkpoint(job));
  cluster_.fail_node(0);
  // Damage the newest image's only reachable (remote) copy.
  ASSERT_TRUE(cluster_.remote_storage().corrupt_blob(
      cluster_.remote_storage().newest_id(), 21, 3));

  const RecoveryReport report = manager_.recover(job);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.from_image);
  EXPECT_FALSE(report.data_loss_with_intact_replica);
  const RecoveryAttempt* older = find_attempt(report, RecoveryStep::kOlderSurviving);
  ASSERT_NE(older, nullptr);
  EXPECT_TRUE(older->ok);
  EXPECT_EQ(report.restored_sequence, 1u);  // fell back one sequence point
}

TEST_F(RecoveryTest, ColdStartOnlyWhenNothingWasEverCommitted) {
  const RecoveryManager::JobId job =
      manager_.launch(0, sim::CounterGuest::kTypeName, {});
  cluster_.fail_node(0);

  const RecoveryReport report = manager_.recover(job);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.cold_started);
  EXPECT_FALSE(report.from_image);
  // The gate must NOT fire: there was no committed image to lose.
  EXPECT_FALSE(report.data_loss_with_intact_replica);
  const RecoveryAttempt* cold = find_attempt(report, RecoveryStep::kColdStart);
  ASSERT_NE(cold, nullptr);
  EXPECT_TRUE(cold->ok);
  EXPECT_TRUE(cluster_.node(1).kernel().process(report.restored_pid).alive());
}

TEST_F(RecoveryTest, NoSurvivingNodeIsReportedNotRecovered) {
  const auto job = launch_and_checkpoint(0);
  cluster_.fail_node(0);
  cluster_.fail_node(1);
  const RecoveryReport report = manager_.recover(job);
  EXPECT_FALSE(report.recovered);
  EXPECT_EQ(report.target_node, -1);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_FALSE(report.attempts[0].ok);
}

TEST_F(RecoveryTest, FailoverRetargetsAndScrubReplicatesOntoNewHome) {
  const auto job = launch_and_checkpoint(0);
  cluster_.fail_node(0);
  const RecoveryReport report = manager_.recover(job);
  ASSERT_TRUE(report.from_image);

  // Self-healing: the local replica slot now points at node 1's disk and
  // the post-recovery scrub re-replicated the committed history onto it.
  storage::ReplicatedStore& store = manager_.store(job);
  const storage::ImageId newest = store.newest_committed();
  ASSERT_NE(newest, storage::kBadImageId);
  EXPECT_TRUE(
      store.load_from(RecoveryManager::kLocalReplica, newest, nullptr).has_value());
  EXPECT_EQ(store.intact_replicas(newest), 2u);
  EXPECT_FALSE(cluster_.node(1).disk().list().empty());

  // The healed job checkpoints and recovers again — the loop is closed.
  ckpt::test::run_steps(cluster_.node(1).kernel(), manager_.pid_of(job), 50);
  EXPECT_TRUE(manager_.checkpoint(job));
  cluster_.fail_node(1);
  cluster_.repair_node(0);
  const RecoveryReport second = manager_.recover(job);
  EXPECT_TRUE(second.recovered);
  EXPECT_TRUE(second.from_image);
  EXPECT_FALSE(second.data_loss_with_intact_replica);
  EXPECT_EQ(manager_.home_of(job), 0);
}

TEST_F(RecoveryTest, WatchRecoversEveryJobOnTheFailedNode) {
  const auto job_a = launch_and_checkpoint(0);
  const auto job_b = launch_and_checkpoint(0);
  const auto job_other = launch_and_checkpoint(1);
  manager_.watch();

  cluster_.fail_node(0);
  ASSERT_EQ(manager_.reports().size(), 2u);
  for (const RecoveryReport& report : manager_.reports()) {
    EXPECT_TRUE(report.recovered);
    EXPECT_TRUE(report.from_image);
    EXPECT_FALSE(report.data_loss_with_intact_replica);
  }
  EXPECT_EQ(manager_.home_of(job_a), 1);
  EXPECT_EQ(manager_.home_of(job_b), 1);
  EXPECT_EQ(manager_.home_of(job_other), 1);  // untouched
  EXPECT_EQ(manager_.checkpoints_taken(job_other), 1u);
}

TEST_F(RecoveryTest, OverlappingFailuresEachResolveOwnLadderRung) {
  // Two nodes failing back-to-back inside one detection window: every
  // affected job walks its own ladder without cross-talk — each restores
  // its own image, never a co-hosted neighbour's.
  Cluster cluster(3, NodeConfig{});
  RecoveryManager manager(cluster);
  const auto job_a = manager.launch(0, sim::CounterGuest::kTypeName, {});
  const auto job_b = manager.launch(1, sim::CounterGuest::kTypeName, {});
  ckpt::test::run_steps(cluster.node(0).kernel(), manager.pid_of(job_a), 60);
  ckpt::test::run_steps(cluster.node(1).kernel(), manager.pid_of(job_b), 120);
  ASSERT_TRUE(manager.checkpoint(job_a));
  ASSERT_TRUE(manager.checkpoint(job_b));
  manager.watch();

  cluster.fail_node(0);  // A fails over (to node 1)
  cluster.fail_node(1);  // ...which immediately dies too: A again, plus B

  ASSERT_EQ(manager.reports().size(), 3u);
  for (const RecoveryReport& report : manager.reports()) {
    EXPECT_TRUE(report.recovered);
    EXPECT_TRUE(report.from_image);
    EXPECT_FALSE(report.data_loss_with_intact_replica);
    const RecoveryAttempt* remote = find_attempt(report, RecoveryStep::kRemoteNewest);
    ASSERT_NE(remote, nullptr);
    EXPECT_TRUE(remote->ok);  // home disk died every time
  }
  EXPECT_EQ(manager.home_of(job_a), 2);
  EXPECT_EQ(manager.home_of(job_b), 2);

  // No cross-talk: each survivor carries exactly its own checkpointed
  // progress (the counters were deliberately distinct).
  sim::SimKernel& survivor = cluster.node(2).kernel();
  const std::uint64_t counter_a = sim::CounterGuest::read_counter(
      survivor, survivor.process(manager.pid_of(job_a)));
  const std::uint64_t counter_b = sim::CounterGuest::read_counter(
      survivor, survivor.process(manager.pid_of(job_b)));
  EXPECT_GE(counter_a, 60u);
  EXPECT_LT(counter_a, 120u);
  EXPECT_GE(counter_b, 120u);
}

TEST_F(RecoveryTest, OverlappingFailuresResolveDifferentRungsIndependently) {
  // Two jobs co-homed on one failing node where only one job's newest
  // remote copy is damaged: that job degrades to older-surviving while its
  // neighbour still takes the remote-newest fast path.
  const auto job_a = launch_and_checkpoint(0);
  ckpt::test::run_steps(cluster_.node(0).kernel(), manager_.pid_of(job_a), 100);
  ASSERT_TRUE(manager_.checkpoint(job_a));
  const auto job_b = launch_and_checkpoint(0);
  manager_.watch();

  const storage::ImageId newest_a = manager_.store(job_a).newest_committed();
  ASSERT_TRUE(cluster_.remote_storage().corrupt_blob(newest_a, 21, 3));
  cluster_.fail_node(0);

  ASSERT_EQ(manager_.reports().size(), 2u);
  for (const RecoveryReport& report : manager_.reports()) {
    EXPECT_TRUE(report.recovered);
    EXPECT_TRUE(report.from_image);
    EXPECT_FALSE(report.data_loss_with_intact_replica);
    if (report.job == job_a) {
      const RecoveryAttempt* older = find_attempt(report, RecoveryStep::kOlderSurviving);
      ASSERT_NE(older, nullptr);
      EXPECT_TRUE(older->ok);
      EXPECT_EQ(report.restored_sequence, 1u);
    } else {
      EXPECT_EQ(report.job, job_b);
      const RecoveryAttempt* remote = find_attempt(report, RecoveryStep::kRemoteNewest);
      ASSERT_NE(remote, nullptr);
      EXPECT_TRUE(remote->ok);
      EXPECT_EQ(find_attempt(report, RecoveryStep::kOlderSurviving), nullptr);
    }
  }
}

TEST_F(RecoveryTest, ReportSummaryNamesTheLadderOutcome) {
  const auto job = launch_and_checkpoint(0);
  cluster_.fail_node(0);
  const std::string summary = manager_.recover(job).summary();
  EXPECT_NE(summary.find("local-newest=fail"), std::string::npos) << summary;
  EXPECT_NE(summary.find("remote-newest=ok"), std::string::npos) << summary;
  EXPECT_EQ(summary.find("DATA LOSS"), std::string::npos) << summary;
}

TEST_F(RecoveryTest, UnknownJobIsRejected) {
  EXPECT_THROW(manager_.recover(999), std::invalid_argument);
  EXPECT_THROW(manager_.launch(0, "no-such-guest", {}), std::exception);
  EXPECT_EQ(manager_.pid_of(999), sim::kNoPid);
  EXPECT_EQ(manager_.home_of(999), -1);
}

}  // namespace
}  // namespace ckpt::cluster
