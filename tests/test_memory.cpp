#include <gtest/gtest.h>

#include <cstring>

#include "sim/memory.hpp"

namespace ckpt::sim {
namespace {

TEST(PhysicalMemory, AllocateZeroed) {
  PhysicalMemory mem;
  const FrameId frame = mem.allocate();
  for (std::byte b : mem.frame_data(frame)) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(mem.frames_in_use(), 1u);
}

TEST(PhysicalMemory, RefCounting) {
  PhysicalMemory mem;
  const FrameId frame = mem.allocate();
  mem.add_ref(frame);
  EXPECT_EQ(mem.ref_count(frame), 2u);
  mem.release(frame);
  EXPECT_EQ(mem.frames_in_use(), 1u);
  mem.release(frame);
  EXPECT_EQ(mem.frames_in_use(), 0u);
}

TEST(PhysicalMemory, FrameReuseAfterFree) {
  PhysicalMemory mem;
  const FrameId a = mem.allocate();
  mem.release(a);
  const FrameId b = mem.allocate();
  EXPECT_EQ(a, b);  // free list reuse
}

TEST(PhysicalMemory, CopyIsIndependent) {
  PhysicalMemory mem;
  const FrameId a = mem.allocate();
  mem.frame_data(a)[0] = std::byte{0x7F};
  const FrameId b = mem.allocate_copy(a);
  EXPECT_EQ(mem.frame_data(b)[0], std::byte{0x7F});
  mem.frame_data(b)[0] = std::byte{0x01};
  EXPECT_EQ(mem.frame_data(a)[0], std::byte{0x7F});
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysicalMemory mem_;
  AddressSpace as_{&mem_};
};

TEST_F(AddressSpaceTest, MapAndAccess) {
  as_.map_region(0x10000, 4, kProtRW, VmaKind::kData, "data");
  EXPECT_EQ(as_.mapped_bytes(), 4 * kPageSize);
  EXPECT_EQ(as_.check_access(page_of(0x10000), kProtWrite), AccessResult::kOk);
  EXPECT_EQ(as_.check_access(page_of(0x20000), kProtRead), AccessResult::kNotMapped);
}

TEST_F(AddressSpaceTest, OverlappingMapThrows) {
  as_.map_region(0x10000, 4, kProtRW, VmaKind::kData, "a");
  EXPECT_THROW(as_.map_region(0x11000, 2, kProtRW, VmaKind::kData, "b"),
               std::invalid_argument);
}

TEST_F(AddressSpaceTest, UnalignedMapThrows) {
  EXPECT_THROW(as_.map_region(0x10001, 1, kProtRW, VmaKind::kData, "x"),
               std::invalid_argument);
}

TEST_F(AddressSpaceTest, UnmapReleasesFrames) {
  as_.map_region(0x10000, 4, kProtRW, VmaKind::kData, "data");
  EXPECT_EQ(mem_.frames_in_use(), 4u);
  as_.unmap_region(0x11000);  // any address inside
  EXPECT_EQ(mem_.frames_in_use(), 0u);
  EXPECT_EQ(as_.vmas().size(), 0u);
}

TEST_F(AddressSpaceTest, ExtendRegionGrowsVma) {
  as_.map_region(0x10000, 2, kProtRW, VmaKind::kHeap, "heap");
  as_.extend_region(0x10000, 3);
  const Vma* vma = as_.find_vma(0x10000);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->page_count, 5u);
  EXPECT_EQ(as_.check_access(page_of(0x10000) + 4, kProtWrite), AccessResult::kOk);
}

TEST_F(AddressSpaceTest, ExtendIntoNeighbourThrows) {
  as_.map_region(0x10000, 2, kProtRW, VmaKind::kHeap, "heap");
  as_.map_region(0x10000 + 2 * kPageSize, 1, kProtRW, VmaKind::kAnon, "wall");
  EXPECT_THROW(as_.extend_region(0x10000, 1), std::invalid_argument);
}

TEST_F(AddressSpaceTest, ProtectAndUnprotect) {
  as_.map_region(0x10000, 2, kProtRW, VmaKind::kData, "data");
  const PageNum page = page_of(0x10000);
  as_.protect_pages(page, 1, kProtRead);
  EXPECT_EQ(as_.check_access(page, kProtWrite), AccessResult::kProtectionFault);
  EXPECT_EQ(as_.check_access(page, kProtRead), AccessResult::kOk);
  as_.unprotect_page(page);
  EXPECT_EQ(as_.check_access(page, kProtWrite), AccessResult::kOk);
}

TEST_F(AddressSpaceTest, DirtyBitAccounting) {
  as_.map_region(0x10000, 4, kProtRW, VmaKind::kData, "data");
  as_.pte(page_of(0x10000))->dirty = true;
  as_.pte(page_of(0x10000) + 2)->dirty = true;
  EXPECT_EQ(as_.dirty_page_count(), 2u);
  as_.clear_dirty_bits();
  EXPECT_EQ(as_.dirty_page_count(), 0u);
}

TEST_F(AddressSpaceTest, CloneCowSharesFramesReadOnly) {
  as_.map_region(0x10000, 2, kProtRW, VmaKind::kData, "data");
  as_.page_data(page_of(0x10000))[0] = std::byte{0x42};

  auto child = as_.clone_cow();
  // Both sides share the frame and lost write permission.
  EXPECT_EQ(mem_.frames_in_use(), 2u);
  EXPECT_EQ(as_.check_access(page_of(0x10000), kProtWrite), AccessResult::kProtectionFault);
  EXPECT_EQ(child->check_access(page_of(0x10000), kProtWrite),
            AccessResult::kProtectionFault);
  EXPECT_EQ(child->page_data(page_of(0x10000))[0], std::byte{0x42});
}

TEST_F(AddressSpaceTest, BreakCowIsolatesWrites) {
  as_.map_region(0x10000, 1, kProtRW, VmaKind::kData, "data");
  as_.page_data(page_of(0x10000))[0] = std::byte{0x42};
  auto child = as_.clone_cow();

  child->break_cow(page_of(0x10000));
  child->page_data(page_of(0x10000))[0] = std::byte{0x99};

  EXPECT_EQ(as_.page_data(page_of(0x10000))[0], std::byte{0x42});
  EXPECT_EQ(child->page_data(page_of(0x10000))[0], std::byte{0x99});
  EXPECT_EQ(child->check_access(page_of(0x10000), kProtWrite), AccessResult::kOk);
}

TEST_F(AddressSpaceTest, BreakCowLastReferenceSkipsCopy) {
  as_.map_region(0x10000, 1, kProtRW, VmaKind::kData, "data");
  auto child = as_.clone_cow();
  child.reset();  // drop the other reference
  as_.break_cow(page_of(0x10000));
  EXPECT_EQ(mem_.frames_in_use(), 1u);
  EXPECT_EQ(as_.check_access(page_of(0x10000), kProtWrite), AccessResult::kOk);
}

TEST_F(AddressSpaceTest, CloneDeepIsIndependent) {
  as_.map_region(0x10000, 1, kProtRW, VmaKind::kData, "data");
  as_.page_data(page_of(0x10000))[7] = std::byte{0x55};
  auto copy = as_.clone_deep();
  as_.page_data(page_of(0x10000))[7] = std::byte{0x11};
  EXPECT_EQ(copy->page_data(page_of(0x10000))[7], std::byte{0x55});
  EXPECT_EQ(copy->check_access(page_of(0x10000), kProtWrite), AccessResult::kOk);
}

}  // namespace
}  // namespace ckpt::sim
