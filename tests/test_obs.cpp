// Observability layer: TraceRecorder spans, MetricsRegistry determinism,
// Chrome trace-event export well-formedness, engine/recovery instrumentation,
// and the soak-level determinism contract (trace + metrics byte-identical
// across commit-pipeline worker counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "cluster/recovery.hpp"
#include "core/systemlevel.hpp"
#include "inject/torture.hpp"
#include "obs/json.hpp"
#include "obs/observer.hpp"
#include "obs/overhead.hpp"
#include "obs/rollup.hpp"
#include "test_common.hpp"

namespace ckpt::obs {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

// ---------------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------------

TEST(ObsJson, QuotedEscapesControlCharactersAndSpecials) {
  EXPECT_EQ(json_quoted("plain"), "\"plain\"");
  EXPECT_EQ(json_quoted("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quoted("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quoted("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(json_quoted(std::string_view("\x01\x1f", 2)), "\"\\u0001\\u001f\"");
}

TEST(ObsJson, MicrosIsExactFixedPoint) {
  std::string out;
  json_append_micros(out, 0);
  EXPECT_EQ(out, "0.000");
  out.clear();
  json_append_micros(out, 1);
  EXPECT_EQ(out, "0.001");
  out.clear();
  json_append_micros(out, 12'345'678);
  EXPECT_EQ(out, "12345.678");
}

TEST(ObsJson, LintAcceptsValidAndRejectsBrokenDocuments) {
  EXPECT_TRUE(json_lint(R"({"a":[1,2,{"b":"c\n"}],"d":null,"e":-1.5e3})"));
  std::string error;
  EXPECT_FALSE(json_lint(R"({"a":1,})", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(json_lint(R"({"a" 1})"));
  EXPECT_FALSE(json_lint(R"([1,2)"));
  EXPECT_FALSE(json_lint(R"({"a":01})"));
  EXPECT_FALSE(json_lint("{\"a\":\"\x01\"}"));  // raw control char in string
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorder, SpansNestAndCarrySequenceAndClockTime) {
  TraceRecorder trace;
  SimTime now = 100;
  trace.set_clock([&now] { return now; });

  trace.begin("outer", "test", kControlTrack);
  now = 150;
  trace.begin("inner", "test", kControlTrack, {TraceArg::num("k", 7)});
  now = 160;
  trace.end("inner", kControlTrack);
  now = 200;
  trace.end("outer", kControlTrack, {TraceArg::str("outcome", "ok")});

  const std::deque<TraceEvent>& events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(events[i].seq, i);
  EXPECT_EQ(events[0].phase, EventPhase::kBegin);
  EXPECT_EQ(events[0].ts, 100u);
  EXPECT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].number, 7u);
  EXPECT_EQ(events[2].phase, EventPhase::kEnd);
  EXPECT_EQ(events[3].ts, 200u);
  EXPECT_EQ(events[3].args[0].text, "ok");

  const std::map<std::string, TraceRecorder::PhaseStat> totals = trace.phase_totals();
  ASSERT_TRUE(totals.contains("outer"));
  EXPECT_EQ(totals.at("outer").count, 1u);
  EXPECT_EQ(totals.at("outer").total, 100u);  // 200 - 100 inclusive span
  EXPECT_EQ(totals.at("inner").total, 10u);
}

TEST(TraceRecorder, ExplicitTimestampEventsKeepEmissionOrderSeq) {
  TraceRecorder trace;
  trace.set_clock([] { return SimTime{500}; });
  // A deferral span rendered retroactively: begin in the past, end "now".
  trace.begin_at(120, "defer", "ckpt", kControlTrack);
  trace.end_at(500, "defer", kControlTrack);
  trace.instant_at(130, "mark", "ckpt", kControlTrack);
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].ts, 120u);
  EXPECT_EQ(trace.events()[2].seq, 2u);  // seq follows emission, not ts
  EXPECT_EQ(trace.events()[2].ts, 130u);
}

TEST(TraceRecorder, SpanGuardClosesOnScopeExitAndEarlyEndIsIdempotent) {
  TraceRecorder trace;
  trace.set_clock([] { return SimTime{1}; });
  {
    SpanGuard guard(&trace, "auto", "test", kControlTrack);
  }
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[1].phase, EventPhase::kEnd);

  trace.clear();
  {
    SpanGuard guard(&trace, "early", "test", kControlTrack);
    guard.end({TraceArg::str("outcome", "done")});
    // Destructor must not emit a second end.
  }
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[1].args[0].text, "done");
}

TEST(TraceRecorder, NullRecorderSpanGuardIsANoOp) {
  SpanGuard guard(nullptr, "nothing", "test", kControlTrack);
  guard.end();  // must not crash
}

TEST(TraceRecorder, ChromeExportIsWellFormedAndBalanced) {
  TraceRecorder trace;
  SimTime now = 0;
  trace.set_clock([&now] { return now; });
  trace.begin("checkpoint", "ckpt", 5, {TraceArg::str("engine", "CRAK")});
  now = 2'500;  // 2.5 us
  trace.instant("mark", "ckpt", 5);
  trace.counter("ckpt.bytes", kControlTrack, 4096);
  now = 10'000;
  trace.end("checkpoint", 5, {TraceArg::num("bytes", 4096)});

  const std::string json = trace.export_chrome_json();
  std::string error;
  EXPECT_TRUE(json_lint(json, &error)) << error;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos);  // fixed-point us
  EXPECT_NE(json.find("\"ts\":10.000"), std::string::npos);

  // Begin/end must balance per track over the event log itself.
  std::map<std::uint64_t, int> depth;
  for (const TraceEvent& event : trace.events()) {
    if (event.phase == EventPhase::kBegin) ++depth[event.track];
    if (event.phase == EventPhase::kEnd) {
      --depth[event.track];
      EXPECT_GE(depth[event.track], 0);
    }
  }
  for (const auto& [track, open] : depth) EXPECT_EQ(open, 0) << "track " << track;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndHistogramsAggregate) {
  MetricsRegistry metrics;
  metrics.add("ckpt.completed");
  metrics.add("ckpt.completed", 2);
  EXPECT_EQ(metrics.counter("ckpt.completed"), 3u);
  EXPECT_EQ(metrics.counter("absent"), 0u);

  metrics.set_gauge("autonomic.interval_ns", 5'000);
  metrics.set_gauge("autonomic.interval_ns", -7);
  EXPECT_EQ(metrics.gauge("autonomic.interval_ns"), -7);

  const std::uint64_t bounds[] = {10, 100, 1000};
  metrics.observe("lat", 5, bounds);
  metrics.observe("lat", 50, bounds);
  metrics.observe("lat", 5'000, bounds);  // overflow bucket
  const HistogramData* hist = metrics.histogram("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 5'055u);
  EXPECT_EQ(hist->min, 5u);
  EXPECT_EQ(hist->max, 5'000u);
  ASSERT_EQ(hist->counts.size(), 4u);
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 1u);
  EXPECT_EQ(hist->counts[2], 0u);
  EXPECT_EQ(hist->counts[3], 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndInsertionOrderIndependent) {
  MetricsRegistry forward, backward;
  forward.add("alpha");
  forward.add("beta", 2);
  forward.set_gauge("g", 1);
  forward.observe("h", 7, MetricsRegistry::latency_bounds());
  backward.observe("h", 7, MetricsRegistry::latency_bounds());
  backward.set_gauge("g", 1);
  backward.add("beta", 2);
  backward.add("alpha");

  EXPECT_EQ(forward, backward);
  const std::string snapshot = forward.snapshot_json();
  EXPECT_EQ(snapshot, backward.snapshot_json());
  std::string error;
  EXPECT_TRUE(json_lint(snapshot, &error)) << error;
  EXPECT_LT(snapshot.find("\"alpha\""), snapshot.find("\"beta\""));
  EXPECT_NE(snapshot.find("\"counters\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"gauges\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"histograms\""), std::string::npos);
}

TEST(TraceRecorder, RingEvictsOldestEventsAndCountsEveryDrop) {
  TraceRecorder trace;
  trace.set_capacity(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    trace.instant_at(static_cast<SimTime>(i * 100), "tick", "test", kControlTrack);
  }

  ASSERT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.dropped(), 2u);
  // seq keeps counting across evictions: the ring holds the newest window.
  EXPECT_EQ(trace.events().front().seq, 2u);
  EXPECT_EQ(trace.events().back().seq, 5u);
  EXPECT_EQ(trace.next_seq(), 6u);

  // Shrinking evicts immediately and keeps charging the drop counter.
  trace.set_capacity(1);
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events().front().seq, 5u);
  EXPECT_EQ(trace.dropped(), 5u);

  // clear() resets the ring statistics along with the events.
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.next_seq(), 0u);
}

TEST(TraceRecorder, ObserverWiresEvictionsToTheTraceDroppedCounter) {
  Observer observer;
  observer.trace().set_capacity(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    observer.trace().instant_at(static_cast<SimTime>(i), "tick", "test", kControlTrack);
  }
  EXPECT_EQ(observer.metrics().counter("obs.trace_dropped"), 3u);

  observer.trace().set_capacity(1);
  EXPECT_EQ(observer.metrics().counter("obs.trace_dropped"), 4u);
}

// ---------------------------------------------------------------------------
// Histogram percentiles and registry merging (the rollup primitives)
// ---------------------------------------------------------------------------

TEST(HistogramData, PercentileIsExactAtBucketBoundsAndCapsAtObservedMax) {
  MetricsRegistry metrics;
  const std::uint64_t bounds[] = {10, 100, 1000};
  // 5 observations at exactly 10, 4 at exactly 100, 1 in the overflow bucket.
  for (int i = 0; i < 5; ++i) metrics.observe("h", 10, bounds);
  for (int i = 0; i < 4; ++i) metrics.observe("h", 100, bounds);
  metrics.observe("h", 5000, bounds);

  const HistogramData* hist = metrics.histogram("h");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->count, 10u);
  // Boundary values land in their bound's bucket, so the estimates are exact.
  EXPECT_EQ(hist->percentile(1), 10u);    // rank 1
  EXPECT_EQ(hist->percentile(500), 10u);  // rank 5: last of the 10s
  EXPECT_EQ(hist->percentile(600), 100u); // rank 6: first of the 100s
  EXPECT_EQ(hist->percentile(900), 100u); // rank 9: last of the 100s
  // Ranks in the overflow bucket report the observed max, not infinity.
  EXPECT_EQ(hist->percentile(990), 5000u);
  EXPECT_EQ(hist->percentile(1000), 5000u);

  EXPECT_EQ(HistogramData{}.percentile(500), 0u);
}

TEST(HistogramData, MergeAddsBucketwiseAndRejectsMismatchedLayouts) {
  MetricsRegistry a, b;
  const std::uint64_t bounds[] = {10, 100, 1000};
  a.observe("h", 10, bounds);
  a.observe("h", 5000, bounds);
  b.observe("h", 100, bounds);
  b.observe("h", 100, bounds);

  HistogramData merged = *a.histogram("h");
  merged.merge(*b.histogram("h"));
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.sum, 10u + 5000u + 100u + 100u);
  EXPECT_EQ(merged.min, 10u);
  EXPECT_EQ(merged.max, 5000u);
  EXPECT_EQ(merged.counts[0], 1u);  // <= 10
  EXPECT_EQ(merged.counts[1], 2u);  // <= 100
  EXPECT_EQ(merged.counts[2], 0u);  // <= 1000
  EXPECT_EQ(merged.counts[3], 1u);  // overflow

  MetricsRegistry other;
  const std::uint64_t other_bounds[] = {7, 77};
  other.observe("h", 7, other_bounds);
  EXPECT_THROW(merged.merge(*other.histogram("h")), std::invalid_argument);
}

TEST(MetricsRegistry, MergeFoldsAllSectionsAndPrefixNamespaces) {
  const std::uint64_t bounds[] = {10, 100, 1000};
  MetricsRegistry node;
  node.add("commits", 2);
  node.set_gauge("interval", 7);
  node.observe("latency", 100, bounds);

  MetricsRegistry fleet;
  fleet.add("commits", 3);
  fleet.set_gauge("interval", 5);
  fleet.observe("latency", 10, bounds);

  // Unprefixed: counters add, gauges take the incoming value, histograms
  // fold bucket-wise.
  fleet.merge(node);
  EXPECT_EQ(fleet.counter("commits"), 5u);
  EXPECT_EQ(fleet.gauge("interval"), 7);
  ASSERT_NE(fleet.histogram("latency"), nullptr);
  EXPECT_EQ(fleet.histogram("latency")->count, 2u);
  EXPECT_EQ(fleet.histogram("latency")->counts[0], 1u);
  EXPECT_EQ(fleet.histogram("latency")->counts[1], 1u);

  // Prefixed: the same snapshot lands under a per-node namespace without
  // touching the unprefixed aggregate.
  fleet.merge(node, "node3.");
  EXPECT_EQ(fleet.counter("node3.commits"), 2u);
  EXPECT_EQ(fleet.gauge("node3.interval"), 7);
  ASSERT_NE(fleet.histogram("node3.latency"), nullptr);
  EXPECT_EQ(fleet.histogram("node3.latency")->count, 1u);
  EXPECT_EQ(fleet.counter("commits"), 5u);

  // Merging into an empty registry copies the source verbatim.
  MetricsRegistry copy;
  copy.merge(node);
  EXPECT_EQ(copy, node);

  // A histogram landing on an existing name with different bounds throws:
  // bucket layouts are part of a metric's identity.
  MetricsRegistry clash;
  const std::uint64_t other_bounds[] = {7, 77};
  clash.observe("latency", 7, other_bounds);
  EXPECT_THROW(fleet.merge(clash), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet telemetry rollups
// ---------------------------------------------------------------------------

TEST(FleetTelemetry, QuantilesOutliersAndRollupAreIngestionOrderInvariant) {
  const std::uint64_t bounds[] = {10, 100, 1000, 10000};
  MetricsRegistry fast, slow, sparse;
  for (int i = 0; i < 8; ++i) fast.observe("commit", 10, bounds);
  for (int i = 0; i < 8; ++i) slow.observe("commit", 1000, bounds);
  // Below min_samples: two outrageous samples are noise, not a drift signal.
  sparse.observe("commit", 10000, bounds);
  sparse.observe("commit", 10000, bounds);

  FleetTelemetry forward;
  forward.ingest(0, fast);
  forward.ingest(1, fast);
  forward.ingest(2, slow);
  forward.ingest(3, sparse);

  EXPECT_EQ(forward.node_count(), 4u);
  const auto q = forward.quantiles("commit");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 26u);
  EXPECT_EQ(q->p50, 10u);    // rank 13 of 26: inside the 16 fast samples
  EXPECT_EQ(q->p95, 10000u); // rank 25: inside the sparse node's samples
  EXPECT_EQ(q->p99, 10000u);

  // Only the slow node flags: its median is 100x the fleet median, while
  // the sparse node is filtered by min_samples.
  const auto outliers = forward.outliers("commit");
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].node, 2);
  EXPECT_EQ(outliers[0].node_p50, 1000u);
  EXPECT_EQ(outliers[0].fleet_p50, 10u);

  EXPECT_FALSE(forward.quantiles("missing").has_value());
  EXPECT_TRUE(forward.outliers("missing").empty());

  // The rollup document is json_lint-clean and byte-identical for any
  // ingestion order (nodes key on id, names are sorted).
  FleetTelemetry backward;
  backward.ingest(3, sparse);
  backward.ingest(2, slow);
  backward.ingest(1, fast);
  backward.ingest(0, fast);
  const std::string rollup = forward.rollup_json("commit");
  EXPECT_EQ(rollup, backward.rollup_json("commit"));
  std::string error;
  EXPECT_TRUE(json_lint(rollup, &error)) << error;
  EXPECT_NE(rollup.find("\"commit\""), std::string::npos);

  // Re-ingesting a node replaces (not accumulates) its snapshot.
  forward.ingest(2, fast);
  EXPECT_TRUE(forward.outliers("commit").empty());
}

// ---------------------------------------------------------------------------
// Overhead accounting (the closed-loop ledger)
// ---------------------------------------------------------------------------

TEST(OverheadAccountant, LedgerSplitsAndOverheadPermilleArePerNodeAndFleetWide) {
  OverheadAccountant acct;
  acct.charge_useful(1, 900);
  acct.charge_checkpoint(1, 100);
  acct.charge_useful(2, 450);
  acct.charge_rework(2, 50);

  const OverheadLedger* n1 = acct.node(1);
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->useful, 900u);
  EXPECT_EQ(n1->checkpoint, 100u);
  EXPECT_EQ(n1->commits, 1u);
  EXPECT_EQ(n1->overhead_permille(), 100u);  // 100 / 1000

  const OverheadLedger* n2 = acct.node(2);
  ASSERT_NE(n2, nullptr);
  EXPECT_EQ(n2->rework, 50u);
  EXPECT_EQ(n2->reworks, 1u);
  EXPECT_EQ(n2->overhead_permille(), 100u);  // 50 / 500

  EXPECT_EQ(acct.fleet().total(), 1500u);
  EXPECT_EQ(acct.fleet().overhead_permille(), 100u);  // 150 / 1500
  EXPECT_EQ(acct.mean_commit_cost(), 100u);
  EXPECT_EQ(acct.node(9), nullptr);
  EXPECT_EQ(OverheadLedger{}.overhead_permille(), 0u);
}

TEST(OverheadAccountant, MeasuredMtbfCollapsesSameInstantFailures) {
  OverheadAccountant acct;
  EXPECT_EQ(acct.measured_mtbf(), 0u);
  acct.observe_failure(1000);
  EXPECT_EQ(acct.measured_mtbf(), 0u);  // one instant is not a gap
  acct.observe_failure(1000);           // same scheduling window: no zero gap
  acct.observe_failure(3000);
  acct.observe_failure(4000);
  EXPECT_EQ(acct.failures(), 4u);
  EXPECT_EQ(acct.measured_mtbf(), 1500u);  // (4000 - 1000) / 2 gaps

  const std::string table = acct.table();
  EXPECT_NE(table.find("4 failures"), std::string::npos);
  EXPECT_NE(table.find("measured mtbf=1.500us"), std::string::npos);
  EXPECT_NE(table.find("fleet"), std::string::npos);

  acct.clear();
  EXPECT_EQ(acct.failures(), 0u);
  EXPECT_EQ(acct.measured_mtbf(), 0u);
  EXPECT_EQ(acct.fleet().total(), 0u);
}

// ---------------------------------------------------------------------------
// Engine lifecycle instrumentation
// ---------------------------------------------------------------------------

class ObsEngineTest : public SimTest {
 protected:
  sim::SimKernel kernel_;
  storage::LocalDiskBackend backend_{sim::CostModel{}};
  Observer observer_;

  void SetUp() override {
    SimTest::SetUp();
    kernel_.set_observer(&observer_);
  }
  void TearDown() override {
    kernel_.set_observer(nullptr);
    observer_.set_clock({});
  }
};

TEST_F(ObsEngineTest, CheckpointEmitsLifecycleSpansAndMetrics) {
  core::SyscallEngine engine("epckpt", &backend_, core::EngineOptions{}, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  const core::CheckpointResult result = engine.request_checkpoint(kernel_, pid);
  ASSERT_TRUE(result.ok) << result.error;

  EXPECT_EQ(observer_.metrics().counter("ckpt.initiated"), 1u);
  EXPECT_EQ(observer_.metrics().counter("ckpt.completed"), 1u);
  EXPECT_EQ(observer_.metrics().counter("ckpt.full"), 1u);
  EXPECT_GT(observer_.metrics().counter("ckpt.bytes_captured"), 0u);
  const HistogramData* latency = observer_.metrics().histogram("ckpt.total_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1u);

  auto count_phase = [&](const char* name, EventPhase phase) {
    return std::count_if(observer_.trace().events().begin(),
                         observer_.trace().events().end(), [&](const TraceEvent& e) {
                           return e.name == name && e.phase == phase;
                         });
  };
  EXPECT_EQ(count_phase("checkpoint", EventPhase::kBegin), 1);
  EXPECT_EQ(count_phase("checkpoint", EventPhase::kEnd), 1);
  EXPECT_EQ(count_phase("capture", EventPhase::kBegin), 1);
  EXPECT_EQ(count_phase("capture", EventPhase::kEnd), 1);
  EXPECT_EQ(count_phase("store", EventPhase::kBegin), 1);
  EXPECT_EQ(count_phase("initiate", EventPhase::kInstant), 1);

  // Lifecycle spans ride the pid's own track.
  const auto& events = observer_.trace().events();
  const auto it = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.name == "checkpoint" && e.phase == EventPhase::kBegin;
  });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->track, static_cast<std::uint64_t>(pid));

  std::string error;
  EXPECT_TRUE(json_lint(observer_.trace().export_chrome_json(), &error)) << error;
  EXPECT_TRUE(json_lint(observer_.metrics().snapshot_json(), &error)) << error;
}

TEST_F(ObsEngineTest, FrozenSchedulerClockStillAdvancesTraceTimestamps) {
  // Events emitted mid-step are stamped with effective time (clock + step
  // charge), so a span never collapses to zero width just because the
  // scheduler clock is frozen inside the step.
  core::SyscallEngine engine("epckpt", &backend_, core::EngineOptions{}, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const sim::Pid pid = kernel_.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel_, pid, 5);
  ASSERT_TRUE(engine.request_checkpoint(kernel_, pid).ok);
  const auto totals = observer_.trace().phase_totals();
  ASSERT_TRUE(totals.contains("checkpoint"));
  EXPECT_GT(totals.at("checkpoint").total, 0u);
  ASSERT_TRUE(totals.contains("capture"));
  EXPECT_GT(totals.at("capture").total, 0u);
}

// ---------------------------------------------------------------------------
// Recovery ladder instrumentation
// ---------------------------------------------------------------------------

TEST_F(SimTest, RecoveryLadderEmitsRungSpansAndGateMetrics) {
  Observer observer;
  cluster::Cluster cluster(2, cluster::NodeConfig{});
  // Cluster-level managers trace on the cluster clock — node kernels come
  // and go with failures, so no kernel attachment here.
  observer.set_clock([&cluster] { return cluster.now(); });
  cluster::RecoveryManagerOptions options;
  options.store.observer = &observer;
  cluster::RecoveryManager manager(cluster, options);

  const auto job = manager.launch(0, sim::CounterGuest::kTypeName, {});
  run_steps(cluster.node(0).kernel(), manager.pid_of(job), 50);
  ASSERT_TRUE(manager.checkpoint(job));
  cluster.fail_node(0);
  const cluster::RecoveryReport report = manager.recover(job);
  ASSERT_TRUE(report.recovered);

  EXPECT_EQ(observer.metrics().counter("recovery.attempts"), 1u);
  EXPECT_EQ(observer.metrics().counter("recovery.from_image"), 1u);
  EXPECT_EQ(observer.metrics().counter("recovery.failed"), 0u);
  EXPECT_EQ(observer.metrics().counter("recovery.data_loss_gate_hits"), 0u);

  bool saw_recovery_span = false, saw_rung = false;
  for (const TraceEvent& event : observer.trace().events()) {
    if (event.name == "recovery" && event.phase == EventPhase::kBegin) {
      saw_recovery_span = true;
    }
    if (event.name.starts_with("rung:")) saw_rung = true;
  }
  EXPECT_TRUE(saw_recovery_span);
  EXPECT_TRUE(saw_rung);
}

// ---------------------------------------------------------------------------
// Soak determinism: trace + metrics are part of the replay contract
// ---------------------------------------------------------------------------

struct SoakArtifacts {
  std::string trace_json;
  std::string metrics_json;
  inject::TortureReport report;
};

SoakArtifacts observed_soak(std::uint32_t workers) {
  inject::TortureOptions options;
  options.seed = 0x0b5e12;
  options.cycles = 30;
  options.replicated_storage = true;
  options.replicas = 3;
  options.workers = workers;
  Observer observer;
  options.observer = &observer;
  inject::TortureHarness harness(options);
  SoakArtifacts artifacts;
  artifacts.report = harness.run(inject::TortureTarget{"CRAK", nullptr});
  artifacts.trace_json = observer.trace().export_chrome_json();
  artifacts.metrics_json = observer.metrics().snapshot_json();
  return artifacts;
}

TEST_F(SimTest, SoakTraceIsByteIdenticalAcrossWorkerCounts) {
  const SoakArtifacts serial = observed_soak(1);
  const SoakArtifacts pooled = observed_soak(8);

  EXPECT_TRUE(serial.report.ok()) << serial.report.summary();
  EXPECT_EQ(serial.report, pooled.report);
  EXPECT_EQ(serial.trace_json, pooled.trace_json)
      << "trace must not observe commit-pipeline concurrency";
  EXPECT_EQ(serial.metrics_json, pooled.metrics_json);

  std::string error;
  ASSERT_TRUE(json_lint(serial.trace_json, &error)) << error;
  ASSERT_TRUE(json_lint(serial.metrics_json, &error)) << error;

  // The soak actually exercised the instrumented paths.
  EXPECT_NE(serial.trace_json.find("\"replica-stage\""), std::string::npos);
  EXPECT_NE(serial.trace_json.find("\"cycle\""), std::string::npos);
  EXPECT_NE(serial.trace_json.find("\"soak\""), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("\"store.committed\""), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("\"torture.cycles\""), std::string::npos);
}

TEST_F(SimTest, ObservedAndUnobservedSoaksProduceTheSameReport) {
  // Attaching an Observer must never perturb the simulation itself.
  inject::TortureOptions options;
  options.seed = 99;
  options.cycles = 25;
  options.replicated_storage = true;
  options.replicas = 2;

  const inject::TortureReport bare =
      inject::TortureHarness(options).run(inject::TortureTarget{"CRAK", nullptr});
  Observer observer;
  options.observer = &observer;
  const inject::TortureReport observed =
      inject::TortureHarness(options).run(inject::TortureTarget{"CRAK", nullptr});
  EXPECT_EQ(bare, observed);
  EXPECT_GT(observer.trace().events().size(), 0u);
}

}  // namespace
}  // namespace ckpt::obs
