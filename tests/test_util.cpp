#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

namespace ckpt::util {
namespace {

TEST(Crc64, EmptyIsZero) { EXPECT_EQ(crc64(nullptr, 0), 0u); }

TEST(Crc64, DetectsSingleBitFlip) {
  std::vector<std::byte> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i & 0xFF);
  const std::uint64_t clean = crc64(data.data(), data.size());
  data[512] ^= std::byte{0x01};
  EXPECT_NE(clean, crc64(data.data(), data.size()));
}

TEST(Crc64, SeedChaining) {
  const char part1[] = "hello ";
  const char part2[] = "world";
  const char whole[] = "hello world";
  const std::uint64_t chained =
      crc64(part2, 5, crc64(part1, 6));
  EXPECT_EQ(chained, crc64(whole, 11));
}

TEST(Crc64, Deterministic) {
  const char data[] = "checkpoint";
  EXPECT_EQ(crc64(data, 10), crc64(data, 10));
}

// --- slicing-by-8 vs bytewise reference equivalence -------------------------
//
// crc64() is now slicing-by-8; crc64_bytewise() keeps the original loop.
// The two must agree on every length (head/tail handling), every alignment,
// and under seeding/chaining — exhaustively over the sizes that matter.

std::vector<std::byte> patterned(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>(rng.next_u64() & 0xFF);
  }
  return data;
}

TEST(Crc64, SlicedMatchesBytewiseOnEveryLengthUpTo512) {
  const std::vector<std::byte> data = patterned(512, 0xC0FFEE);
  for (std::size_t len = 0; len <= data.size(); ++len) {
    const std::span<const std::byte> view(data.data(), len);
    ASSERT_EQ(crc64(view), crc64_bytewise(view)) << "len " << len;
  }
}

TEST(Crc64, SlicedMatchesBytewiseOnUnalignedHeadsAndTails) {
  const std::vector<std::byte> data = patterned(4096 + 16, 0xA11CE);
  for (std::size_t head = 0; head < 8; ++head) {
    for (std::size_t tail = 0; tail < 8; ++tail) {
      const std::span<const std::byte> view(data.data() + head,
                                            data.size() - head - tail);
      ASSERT_EQ(crc64(view), crc64_bytewise(view)) << "head " << head << " tail " << tail;
    }
  }
}

TEST(Crc64, SlicedMatchesBytewiseUnderSeeding) {
  const std::vector<std::byte> data = patterned(1000, 0x5EED);
  for (std::uint64_t seed : {0ULL, 1ULL, 0xDEADBEEFULL, ~0ULL}) {
    ASSERT_EQ(crc64(data, seed), crc64_bytewise(data, seed)) << "seed " << seed;
  }
}

TEST(Crc64, SlicedChainsAtEverySplitPoint) {
  const std::vector<std::byte> data = patterned(96, 0xBEEF);
  const std::uint64_t whole = crc64(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::span<const std::byte> a(data.data(), split);
    const std::span<const std::byte> b(data.data() + split, data.size() - split);
    ASSERT_EQ(crc64(b, crc64(a)), whole) << "split " << split;
  }
}

TEST(Crc64, CombineJoinsIndependentChecksums) {
  const std::vector<std::byte> data = patterned(777, 0xFACADE);
  const std::uint64_t whole = crc64(data);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                            std::size_t{100}, std::size_t{776}, std::size_t{777}}) {
    const std::span<const std::byte> a(data.data(), split);
    const std::span<const std::byte> b(data.data() + split, data.size() - split);
    ASSERT_EQ(crc64_combine(crc64(a), crc64(b), b.size()), whole) << "split " << split;
  }
}

TEST(Crc64, CombineFoldsManyShardsInOrder) {
  const std::vector<std::byte> data = patterned(10000, 0x10AD);
  constexpr std::size_t kShard = 333;  // deliberately not a multiple of 8
  std::uint64_t folded = 0;  // crc of the empty prefix
  for (std::size_t off = 0; off < data.size(); off += kShard) {
    const std::size_t len = std::min(kShard, data.size() - off);
    const std::span<const std::byte> shard(data.data() + off, len);
    folded = crc64_combine(folded, crc64(shard), len);
  }
  EXPECT_EQ(folded, crc64(data));
}

TEST(Crc64, CombineHandlesLargeLengthsWithoutADataPass) {
  // Sanity: combine(x, crc(0^n), n) must equal crc(A ++ 0^n) for a huge-ish
  // n we can still afford to check directly once.
  const std::vector<std::byte> a = patterned(64, 0xAB);
  std::vector<std::byte> padded = a;
  padded.resize(a.size() + (1 << 20));  // 1 MiB of zeros appended
  const std::span<const std::byte> zeros(padded.data() + a.size(), 1 << 20);
  EXPECT_EQ(crc64_combine(crc64(a), crc64(zeros), zeros.size()), crc64(padded));
}

TEST(Serializer, RoundTripPrimitives) {
  Serializer s;
  s.put<std::uint8_t>(0xAB);
  s.put<std::int32_t>(-12345);
  s.put<std::uint64_t>(0xDEADBEEFCAFEF00DULL);
  s.put_double(3.14159);
  s.put_string("hello");

  Deserializer d(s.bytes());
  EXPECT_EQ(d.get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(d.get<std::int32_t>(), -12345);
  EXPECT_EQ(d.get<std::uint64_t>(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(d.get_double(), 3.14159);
  EXPECT_EQ(d.get_string(), "hello");
  EXPECT_TRUE(d.at_end());
}

TEST(Serializer, RoundTripVectors) {
  Serializer s;
  const std::vector<std::uint32_t> values{1, 2, 3, 42};
  s.put_vector(values, [](Serializer& s2, std::uint32_t v) { s2.put(v); });

  Deserializer d(s.bytes());
  const auto out =
      d.get_vector<std::uint32_t>([](Deserializer& d2) { return d2.get<std::uint32_t>(); });
  EXPECT_EQ(out, values);
}

TEST(Serializer, UnderrunThrows) {
  Serializer s;
  s.put<std::uint16_t>(7);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.get<std::uint16_t>(), 7);
  EXPECT_THROW(d.get<std::uint64_t>(), SerializeError);
}

TEST(Serializer, BogusLengthPrefixThrows) {
  Serializer s;
  s.put<std::uint64_t>(1ULL << 60);  // vector "length"
  Deserializer d(s.bytes());
  EXPECT_THROW(
      d.get_vector<std::uint8_t>([](Deserializer& d2) { return d2.get<std::uint8_t>(); }),
      SerializeError);
}

TEST(Serializer, SizeCounterPredictsExactOutputSize) {
  auto encode = [](auto& s) {
    s.template put<std::uint8_t>(7);
    s.template put<std::uint64_t>(1234567);
    s.put_double(2.71828);
    s.put_string("size estimation");
    const std::vector<std::byte> raw(37, std::byte{0xEE});
    s.put_bytes(raw);
    s.put_raw(std::span<const std::byte>(raw.data(), 5));
    const std::vector<std::uint32_t> values{9, 8, 7, 6};
    s.put_vector(values, [](auto& s2, std::uint32_t v) { s2.put(v); });
  };
  SizeCounter counter;
  encode(counter);
  Serializer s;
  encode(s);
  EXPECT_EQ(counter.size(), s.size());
}

TEST(Serializer, ReuseConstructorKeepsCapacityAndStartsEmpty) {
  std::vector<std::byte> scratch(4096, std::byte{0xAA});
  const std::size_t capacity = scratch.capacity();
  Serializer s(std::move(scratch));
  EXPECT_EQ(s.size(), 0u);
  s.put<std::uint32_t>(42);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.get<std::uint32_t>(), 42u);
  EXPECT_GE(std::move(s).take().capacity(), capacity);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(100.0);
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 100.0, 5.0);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(42);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_weibull(1.0, 50.0);
  EXPECT_NEAR(sum / kSamples, 50.0, 3.0);  // scale == mean when shape == 1
}

TEST(TextTable, RendersAligned) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_time_ns(1500), "1.500 us");
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
}

}  // namespace
}  // namespace ckpt::util
