#include <gtest/gtest.h>

#include <cstring>

#include "util/crc64.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

namespace ckpt::util {
namespace {

TEST(Crc64, EmptyIsZero) { EXPECT_EQ(crc64(nullptr, 0), 0u); }

TEST(Crc64, DetectsSingleBitFlip) {
  std::vector<std::byte> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i & 0xFF);
  const std::uint64_t clean = crc64(data.data(), data.size());
  data[512] ^= std::byte{0x01};
  EXPECT_NE(clean, crc64(data.data(), data.size()));
}

TEST(Crc64, SeedChaining) {
  const char part1[] = "hello ";
  const char part2[] = "world";
  const char whole[] = "hello world";
  const std::uint64_t chained =
      crc64(part2, 5, crc64(part1, 6));
  EXPECT_EQ(chained, crc64(whole, 11));
}

TEST(Crc64, Deterministic) {
  const char data[] = "checkpoint";
  EXPECT_EQ(crc64(data, 10), crc64(data, 10));
}

TEST(Serializer, RoundTripPrimitives) {
  Serializer s;
  s.put<std::uint8_t>(0xAB);
  s.put<std::int32_t>(-12345);
  s.put<std::uint64_t>(0xDEADBEEFCAFEF00DULL);
  s.put_double(3.14159);
  s.put_string("hello");

  Deserializer d(s.bytes());
  EXPECT_EQ(d.get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(d.get<std::int32_t>(), -12345);
  EXPECT_EQ(d.get<std::uint64_t>(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(d.get_double(), 3.14159);
  EXPECT_EQ(d.get_string(), "hello");
  EXPECT_TRUE(d.at_end());
}

TEST(Serializer, RoundTripVectors) {
  Serializer s;
  const std::vector<std::uint32_t> values{1, 2, 3, 42};
  s.put_vector(values, [](Serializer& s2, std::uint32_t v) { s2.put(v); });

  Deserializer d(s.bytes());
  const auto out =
      d.get_vector<std::uint32_t>([](Deserializer& d2) { return d2.get<std::uint32_t>(); });
  EXPECT_EQ(out, values);
}

TEST(Serializer, UnderrunThrows) {
  Serializer s;
  s.put<std::uint16_t>(7);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.get<std::uint16_t>(), 7);
  EXPECT_THROW(d.get<std::uint64_t>(), SerializeError);
}

TEST(Serializer, BogusLengthPrefixThrows) {
  Serializer s;
  s.put<std::uint64_t>(1ULL << 60);  // vector "length"
  Deserializer d(s.bytes());
  EXPECT_THROW(
      d.get_vector<std::uint8_t>([](Deserializer& d2) { return d2.get<std::uint8_t>(); }),
      SerializeError);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(100.0);
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 100.0, 5.0);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(42);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_weibull(1.0, 50.0);
  EXPECT_NEAR(sum / kSamples, 50.0, 3.0);  // scale == mean when shape == 1
}

TEST(TextTable, RendersAligned) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_time_ns(1500), "1.500 us");
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
}

}  // namespace
}  // namespace ckpt::util
