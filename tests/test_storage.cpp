#include <gtest/gtest.h>

#include "storage/backend.hpp"
#include "storage/chain.hpp"
#include "storage/image.hpp"

namespace ckpt::storage {
namespace {

CheckpointImage make_image(std::uint64_t tag, ImageKind kind = ImageKind::kFull) {
  CheckpointImage image;
  image.kind = kind;
  image.pid = 42;
  image.process_name = "app";
  image.hostname = "node0";
  image.taken_at = tag;
  image.guest = sim::GuestImage{"counter", {std::byte{1}, std::byte{2}}};
  image.threads.push_back(ThreadImage{1, {}});
  image.threads[0].regs.pc = tag;

  MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(0x10000), 2, sim::kProtRW, sim::VmaKind::kData, "data"};
  PageImage page;
  page.page = seg.vma.first_page;
  page.data.assign(sim::kPageSize, static_cast<std::byte>(tag & 0xFF));
  seg.pages.push_back(std::move(page));
  image.segments.push_back(std::move(seg));

  image.brk = 0x20000;
  image.sig_pending = 0x4;
  FileDescriptorImage fd;
  fd.fd = 3;
  fd.path = "/data/log";
  fd.offset = 128 + tag;
  image.files.push_back(std::move(fd));
  image.bound_ports.push_back(8080);
  return image;
}

TEST(Image, SerializeRoundTrip) {
  const CheckpointImage original = make_image(7);
  const auto bytes = original.serialize();
  const CheckpointImage copy = CheckpointImage::deserialize(bytes);
  EXPECT_EQ(copy.pid, original.pid);
  EXPECT_EQ(copy.process_name, original.process_name);
  EXPECT_EQ(copy.guest.type_name, "counter");
  EXPECT_EQ(copy.guest.config, original.guest.config);
  ASSERT_EQ(copy.threads.size(), 1u);
  EXPECT_EQ(copy.threads[0].regs.pc, 7u);
  ASSERT_EQ(copy.segments.size(), 1u);
  EXPECT_EQ(copy.segments[0].vma.name, "data");
  ASSERT_EQ(copy.segments[0].pages.size(), 1u);
  EXPECT_EQ(copy.segments[0].pages[0].data, original.segments[0].pages[0].data);
  ASSERT_EQ(copy.files.size(), 1u);
  EXPECT_EQ(copy.files[0].offset, 135u);
  EXPECT_EQ(copy.bound_ports, original.bound_ports);
}

TEST(Image, CorruptionDetected) {
  auto bytes = make_image(1).serialize();
  bytes[bytes.size() / 2] ^= std::byte{0xFF};
  EXPECT_THROW(CheckpointImage::deserialize(bytes), ImageCorrupt);
}

TEST(Image, TruncationDetected) {
  auto bytes = make_image(1).serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(CheckpointImage::deserialize(bytes), ImageCorrupt);
}

TEST(Image, PayloadAccounting) {
  const CheckpointImage image = make_image(1);
  EXPECT_EQ(image.payload_bytes(), sim::kPageSize);
  EXPECT_EQ(image.page_count(), 1u);
}

TEST(Backend, LocalDiskStoresAndLoads) {
  LocalDiskBackend backend{sim::CostModel{}};
  SimTime charged = 0;
  auto charge = [&](SimTime t) { charged += t; };
  const ImageId id = backend.store(make_image(3), charge);
  ASSERT_NE(id, kBadImageId);
  EXPECT_GT(charged, 0u);  // disk latency + bandwidth were paid
  const auto loaded = backend.load(id, charge);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->taken_at, 3u);
}

TEST(Backend, LocalDiskUnreachableAfterNodeFailure) {
  LocalDiskBackend backend{sim::CostModel{}};
  const ImageId id = backend.store(make_image(3), nullptr);
  backend.fail_node();
  EXPECT_FALSE(backend.load(id, nullptr).has_value());
  EXPECT_EQ(backend.store(make_image(4), nullptr), kBadImageId);
  backend.recover_node();
  EXPECT_TRUE(backend.load(id, nullptr).has_value());  // data survived the outage
}

TEST(Backend, RemoteSurvivesButCostsMore) {
  const sim::CostModel costs{};
  LocalDiskBackend local{costs};
  RemoteBackend remote{costs};
  SimTime local_cost = 0, remote_cost = 0;
  local.store(make_image(1), [&](SimTime t) { local_cost += t; });
  remote.store(make_image(1), [&](SimTime t) { remote_cost += t; });
  EXPECT_GT(remote_cost, local_cost);  // network + remote disk
}

TEST(Backend, MemoryBackendLosesDataOnPowerCycle) {
  MemoryBackend backend{sim::CostModel{}};
  const ImageId id = backend.store(make_image(9), nullptr);
  ASSERT_TRUE(backend.load(id, nullptr).has_value());
  backend.power_cycle();
  EXPECT_FALSE(backend.load(id, nullptr).has_value());
}

TEST(Backend, NullBackendRetainsNothing) {
  NullBackend backend;
  const ImageId id = backend.store(make_image(1), nullptr);
  EXPECT_NE(id, kBadImageId);  // accepted...
  EXPECT_FALSE(backend.load(id, nullptr).has_value());
  EXPECT_TRUE(backend.list().empty());
  EXPECT_EQ(backend.stored_bytes(), 0u);
}

TEST(Backend, EraseAndList) {
  LocalDiskBackend backend{sim::CostModel{}};
  const ImageId a = backend.store(make_image(1), nullptr);
  const ImageId b = backend.store(make_image(2), nullptr);
  EXPECT_EQ(backend.list().size(), 2u);
  EXPECT_TRUE(backend.erase(a));
  EXPECT_FALSE(backend.erase(a));
  EXPECT_EQ(backend.list().size(), 1u);
  EXPECT_EQ(backend.list()[0], b);
}

class ChainTest : public ::testing::Test {
 protected:
  LocalDiskBackend backend_{sim::CostModel{}};
  CheckpointChain chain_{&backend_};

  static CheckpointImage delta_with_page(std::uint64_t tag, sim::PageNum page,
                                         std::uint32_t offset, std::uint32_t len,
                                         std::byte fill) {
    CheckpointImage image = make_image(tag, ImageKind::kIncremental);
    image.segments[0].pages.clear();
    PageImage p;
    p.page = page;
    p.offset = offset;
    p.data.assign(len, fill);
    image.segments[0].pages.push_back(std::move(p));
    return image;
  }
};

TEST_F(ChainTest, FullThenDeltaReconstructs) {
  const sim::PageNum base_page = sim::page_of(0x10000);
  ASSERT_NE(chain_.append(make_image(1), nullptr), kBadImageId);
  // Delta: overwrite bytes [100, 200) of the first page.
  ASSERT_NE(chain_.append(delta_with_page(2, base_page, 100, 100, std::byte{0xEE}), nullptr),
            kBadImageId);

  const auto merged = chain_.reconstruct(nullptr);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->segments.size(), 1u);
  // Find the first page and verify the overlay.
  const auto& pages = merged->segments[0].pages;
  ASSERT_FALSE(pages.empty());
  const auto& page = pages[0];
  EXPECT_EQ(page.offset, 0u);
  EXPECT_EQ(page.data[99], std::byte{1});    // untouched (full image fill)
  EXPECT_EQ(page.data[100], std::byte{0xEE});  // delta overlay
  EXPECT_EQ(page.data[199], std::byte{0xEE});
  EXPECT_EQ(page.data[200], std::byte{1});
}

TEST_F(ChainTest, ReconstructAtIntermediateSequence) {
  const sim::PageNum base_page = sim::page_of(0x10000);
  chain_.append(make_image(1), nullptr);
  chain_.append(delta_with_page(2, base_page, 0, 8, std::byte{0x22}), nullptr);
  chain_.append(delta_with_page(3, base_page, 0, 8, std::byte{0x33}), nullptr);

  const auto middle = chain_.reconstruct_at(2, nullptr);
  ASSERT_TRUE(middle.has_value());
  EXPECT_EQ(middle->segments[0].pages[0].data[0], std::byte{0x22});

  const auto latest = chain_.reconstruct(nullptr);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->segments[0].pages[0].data[0], std::byte{0x33});
}

TEST_F(ChainTest, NewFullRestartsChain) {
  chain_.append(make_image(1), nullptr);
  chain_.append(delta_with_page(2, sim::page_of(0x10000), 0, 8, std::byte{0x22}), nullptr);
  chain_.append(make_image(5), nullptr);  // new full
  EXPECT_EQ(chain_.links_from_last_full(), 1u);
  const auto merged = chain_.reconstruct(nullptr);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->segments[0].pages[0].data[0], std::byte{5});
}

TEST_F(ChainTest, PruneDropsSupersededImages) {
  chain_.append(make_image(1), nullptr);
  chain_.append(delta_with_page(2, sim::page_of(0x10000), 0, 8, std::byte{0x22}), nullptr);
  chain_.append(make_image(3), nullptr);
  EXPECT_EQ(backend_.list().size(), 3u);
  chain_.prune();
  EXPECT_EQ(backend_.list().size(), 1u);
  const auto merged = chain_.reconstruct(nullptr);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->segments[0].pages[0].data[0], std::byte{3});
}

TEST_F(ChainTest, MissingLinkFailsReconstruction) {
  chain_.append(make_image(1), nullptr);
  const ImageId delta_id =
      chain_.append(delta_with_page(2, sim::page_of(0x10000), 0, 8, std::byte{0x22}), nullptr);
  backend_.erase(delta_id);
  EXPECT_FALSE(chain_.reconstruct(nullptr).has_value());
}

TEST_F(ChainTest, EmptyChainReconstructsNothing) {
  EXPECT_FALSE(chain_.reconstruct(nullptr).has_value());
  EXPECT_EQ(chain_.links_from_last_full(), 0u);
}

// --- Injected store faults and silent corruption (src/inject hooks) --------

TEST(BackendFaults, StoreRejectFailsCleanlyAndIsOneShot) {
  LocalDiskBackend backend{sim::CostModel{}};
  backend.inject_store_fault(StoreFault::kReject);
  EXPECT_EQ(backend.store(make_image(1), nullptr), kBadImageId);
  EXPECT_TRUE(backend.list().empty());  // nothing persisted
  EXPECT_EQ(backend.pending_store_fault(), StoreFault::kNone);  // consumed
  EXPECT_NE(backend.store(make_image(2), nullptr), kBadImageId);
}

TEST(BackendFaults, TornWriteSurfacesOnlyAtLoad) {
  LocalDiskBackend backend{sim::CostModel{}};
  backend.inject_store_fault(StoreFault::kTornWrite);
  const ImageId id = backend.store(make_image(1), nullptr);
  ASSERT_NE(id, kBadImageId);  // the crash-mid-write "succeeded"
  EXPECT_EQ(backend.list().size(), 1u);
  EXPECT_FALSE(backend.load(id, nullptr).has_value());  // CRC catches it
}

TEST(BackendFaults, CorruptionDetectedOnEveryBlobStoreSubclass) {
  const sim::CostModel costs{};
  LocalDiskBackend local{costs};
  RemoteBackend remote{costs};
  MemoryBackend memory{costs};
  BlobStoreBackend* backends[] = {&local, &remote, &memory};
  for (BlobStoreBackend* backend : backends) {
    const ImageId id = backend->store(make_image(9), nullptr);
    ASSERT_NE(id, kBadImageId);
    ASSERT_TRUE(backend->load(id, nullptr).has_value());
    EXPECT_EQ(backend->newest_id(), id);
    ASSERT_TRUE(backend->corrupt_blob(id, /*offset=*/17, /*count=*/5));
    EXPECT_FALSE(backend->load(id, nullptr).has_value());
  }
}

TEST(BackendFaults, CorruptBlobRejectsBadTargets) {
  LocalDiskBackend backend{sim::CostModel{}};
  EXPECT_EQ(backend.newest_id(), kBadImageId);
  EXPECT_FALSE(backend.corrupt_blob(7, 0, 1));  // unknown id
  const ImageId id = backend.store(make_image(1), nullptr);
  EXPECT_FALSE(backend.corrupt_blob(id, 0, 1, std::byte{0}));  // zero mask = no-op
  EXPECT_TRUE(backend.load(id, nullptr).has_value());
}

TEST(BackendFaults, CorruptionOffsetWrapsWithinBlob) {
  LocalDiskBackend backend{sim::CostModel{}};
  const ImageId id = backend.store(make_image(1), nullptr);
  // An offset far beyond the blob size must still land inside the blob.
  ASSERT_TRUE(backend.corrupt_blob(id, ~0ULL - 3, 4));
  EXPECT_FALSE(backend.load(id, nullptr).has_value());
}

TEST(BackendFaults, OutageIsTransientAndPreservesData) {
  RemoteBackend backend{sim::CostModel{}};
  const ImageId id = backend.store(make_image(1), nullptr);
  ASSERT_NE(id, kBadImageId);

  backend.set_outage(true);
  EXPECT_FALSE(backend.reachable());
  EXPECT_EQ(backend.store(make_image(2), nullptr), kBadImageId);
  EXPECT_FALSE(backend.load(id, nullptr).has_value());

  backend.set_outage(false);
  EXPECT_TRUE(backend.load(id, nullptr).has_value());  // data was untouched
}

TEST_F(ChainTest, CorruptedDeltaFailsReconstruction) {
  chain_.append(make_image(1), nullptr);
  const ImageId delta_id =
      chain_.append(delta_with_page(2, sim::page_of(0x10000), 0, 8, std::byte{0x22}), nullptr);
  ASSERT_TRUE(backend_.corrupt_blob(delta_id, 11, 3));
  // The newest state needs the delta, which no longer deserializes.
  EXPECT_FALSE(chain_.reconstruct(nullptr).has_value());
  // The full image beneath it is still intact.
  EXPECT_TRUE(chain_.reconstruct_at(1, nullptr).has_value());
}

TEST_F(ChainTest, NewestSurvivingFallsBackPastCorruptDelta) {
  const sim::PageNum base_page = sim::page_of(0x10000);
  chain_.append(make_image(1), nullptr);
  chain_.append(delta_with_page(2, base_page, 0, 8, std::byte{0x22}), nullptr);
  const ImageId newest_delta =
      chain_.append(delta_with_page(3, base_page, 0, 8, std::byte{0x33}), nullptr);
  ASSERT_TRUE(backend_.corrupt_blob(newest_delta, 5, 2));

  const auto survivor = chain_.reconstruct_newest_surviving(nullptr);
  ASSERT_TRUE(survivor.has_value());
  // Fell back exactly one sequence point: the 0x22 delta still applies.
  EXPECT_EQ(survivor->segments[0].pages[0].data[0], std::byte{0x22});
}

TEST_F(ChainTest, NewestSurvivingFallsBackPastTornFull) {
  chain_.append(make_image(1), nullptr);
  backend_.inject_store_fault(StoreFault::kTornWrite);
  ASSERT_NE(chain_.append(make_image(5), nullptr), kBadImageId);

  const auto survivor = chain_.reconstruct_newest_surviving(nullptr);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->segments[0].pages[0].data[0], std::byte{1});
}

TEST_F(ChainTest, PruneKeepsFallbackWhenNewestFullIsTorn) {
  const sim::PageNum base_page = sim::page_of(0x10000);
  chain_.append(make_image(1), nullptr);
  chain_.append(delta_with_page(2, base_page, 0, 8, std::byte{0x22}), nullptr);
  backend_.inject_store_fault(StoreFault::kTornWrite);
  ASSERT_NE(chain_.append(make_image(5), nullptr), kBadImageId);  // torn on disk

  // Regression: prune() used to cut everything below the newest full image
  // without checking it was readable, destroying the exact states
  // reconstruct_newest_surviving() needs as fallback targets.
  chain_.prune();
  const auto survivor = chain_.reconstruct_newest_surviving(nullptr);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->segments[0].pages[0].data[0], std::byte{0x22});
}

TEST_F(ChainTest, PruneKeepsFallbackWhenNewestFullIsCorrupt) {
  chain_.append(make_image(1), nullptr);
  const ImageId newest = chain_.append(make_image(3), nullptr);
  ASSERT_TRUE(backend_.corrupt_blob(newest, 4, 2));
  chain_.prune();
  EXPECT_EQ(backend_.list().size(), 2u);  // nothing verified newer: keep all
  const auto survivor = chain_.reconstruct_newest_surviving(nullptr);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->segments[0].pages[0].data[0], std::byte{1});
}

TEST_F(ChainTest, NewestSurvivingRefusesWhenEverythingIsCorrupt) {
  const ImageId only = chain_.append(make_image(1), nullptr);
  ASSERT_TRUE(backend_.corrupt_blob(only, 0, 9));
  EXPECT_FALSE(chain_.reconstruct_newest_surviving(nullptr).has_value());
  EXPECT_FALSE(chain_.reconstruct_newest_surviving(nullptr).has_value());  // stable
}

}  // namespace
}  // namespace ckpt::storage
