// Streaming COW commit path (EngineOptions::streaming).
//
// The contract under test, layer by layer:
//
//   * wire identity — a streamed commit produces byte-identical replica
//     blobs to the classic capture → serialize → store path, loadable by
//     the ordinary restart machinery;
//   * worker-count identity — blobs, sim-time and results are identical
//     whether the chunk pipeline runs on one worker or eight (chunking is
//     fixed by stream_chunk_pages, never by pool width);
//   * pause — the guest-visible pause of a fork-snapshot commit is the
//     fork's page-table walk, an order of magnitude below stop-the-world;
//   * no leaks — every exit path (success, mid-stream fault fallback,
//     quorum failure, aborted kernel-thread session) reaps the frozen
//     shadow and leaves no open storage stages; FrameTable counts return
//     to baseline.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/capture.hpp"
#include "core/systemlevel.hpp"
#include "inject/injectors.hpp"
#include "sim/guests.hpp"
#include "storage/replicated.hpp"
#include "test_common.hpp"
#include "util/threadpool.hpp"

namespace ckpt::core {
namespace {

using ckpt::test::run_steps;

/// One self-contained world: kernel, two replicas, a flat ReplicatedStore
/// and a by-pid fork-and-copy SyscallEngine over it.  Tests build two with
/// the same seed and diff the outcomes.
struct StreamWorld {
  sim::SimKernel kernel;
  storage::LocalDiskBackend local;
  storage::RemoteBackend remote;
  std::optional<util::ThreadPool> pool;
  std::optional<storage::ReplicatedStore> store;
  std::optional<SyscallEngine> engine;
  sim::Pid pid = sim::kNoPid;

  explicit StreamWorld(bool streaming, std::uint32_t workers = 0,
                       std::uint64_t seed = 0x57  /* any fixed value */,
                       storage::RetryPolicy retry = {})
      : kernel(2, sim::CostModel{}, seed),
        local(kernel.costs()),
        remote(kernel.costs()) {
    storage::ReplicatedOptions repl_options;
    repl_options.retry = retry;
    if (workers > 0) {
      pool.emplace(workers);
      repl_options.pool = &*pool;
    }
    store.emplace(std::vector<storage::BlobStoreBackend*>{&local, &remote}, repl_options);
    EngineOptions engine_options;
    engine_options.consistency = ConsistencyMode::kForkAndCopy;
    engine_options.streaming = streaming;
    engine_options.store_retry = retry;
    engine.emplace("stream_test", &*store, engine_options, kernel,
                   SyscallEngine::TargetMode::kByPid, nullptr);
  }

  void launch_and_run(std::uint64_t steps, std::uint64_t array_bytes = 64 * 1024) {
    sim::WriterConfig config;
    config.array_bytes = array_bytes;
    config.writes_per_step = 8;
    config.seed = 3;
    pid = kernel.spawn(sim::DenseWriterGuest::kTypeName, config.encode(),
                       sim::spawn_options_for_array(array_bytes));
    run_steps(kernel, pid, steps);
  }
};

class StreamingTest : public ckpt::test::SimTest {};

// --- Wire identity ---------------------------------------------------------

TEST_F(StreamingTest, StreamedBlobIsByteIdenticalToClassicStore) {
  // Two identical deterministic worlds; one commits classically, one
  // streams.  The bytes on every replica must not differ by a single bit.
  StreamWorld classic(/*streaming=*/false);
  StreamWorld streamed(/*streaming=*/true);
  classic.launch_and_run(20);
  streamed.launch_and_run(20);

  const CheckpointResult classic_result =
      classic.engine->request_checkpoint(classic.kernel, classic.pid);
  const CheckpointResult streamed_result =
      streamed.engine->request_checkpoint(streamed.kernel, streamed.pid);
  ASSERT_TRUE(classic_result.ok) << classic_result.error;
  ASSERT_TRUE(streamed_result.ok) << streamed_result.error;
  EXPECT_EQ(classic_result.payload_bytes, streamed_result.payload_bytes);
  EXPECT_EQ(classic_result.pages, streamed_result.pages);

  const auto classic_blob = classic.local.read_blob(classic_result.image_id, nullptr);
  const auto streamed_blob = streamed.local.read_blob(streamed_result.image_id, nullptr);
  ASSERT_TRUE(classic_blob.has_value());
  ASSERT_TRUE(streamed_blob.has_value());
  EXPECT_EQ(*classic_blob, *streamed_blob) << "streamed wire format diverged";
  const auto classic_remote = classic.remote.read_blob(classic_result.image_id, nullptr);
  const auto streamed_remote = streamed.remote.read_blob(streamed_result.image_id, nullptr);
  ASSERT_TRUE(classic_remote.has_value() && streamed_remote.has_value());
  EXPECT_EQ(*classic_remote, *streamed_remote);
}

TEST_F(StreamingTest, StreamedImageRoundTripsThroughRestart) {
  StreamWorld world(/*streaming=*/true);
  world.launch_and_run(20);
  const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
  ASSERT_TRUE(cr.ok) << cr.error;

  // Ground truth straight off the frozen target (it only runs between
  // steps, so its state still matches the snapshot).
  sim::Process& proc = world.kernel.process(world.pid);
  const storage::CheckpointImage truth =
      capture_kernel_level(world.kernel, proc, world.engine->options().capture);
  const auto stored = world.store->load(cr.image_id, nullptr);
  ASSERT_TRUE(stored.has_value());
  EXPECT_TRUE(images_equal_memory(truth, *stored));
  EXPECT_EQ(truth.brk, stored->brk);

  // And the full restart path accepts it.
  world.kernel.terminate(proc, 9);
  world.kernel.reap(world.pid);
  const RestartResult rr = world.engine->restart(world.kernel, world.pid);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_TRUE(world.kernel.process(rr.pid).alive());
}

TEST_F(StreamingTest, IncrementalChainsStreamTheirDeltas) {
  auto make_incremental = [](StreamWorld& world) {
    // Reconfigure the engine for incremental mode with a kernel WP tracker.
    EngineOptions engine_options;
    engine_options.consistency = ConsistencyMode::kForkAndCopy;
    engine_options.streaming = world.engine->options().streaming;
    engine_options.incremental = true;
    engine_options.tracker_factory = [] { return std::make_unique<PteScanTracker>(); };
    world.engine.emplace("stream_inc", &*world.store, engine_options, world.kernel,
                         SyscallEngine::TargetMode::kByPid, nullptr);
  };
  StreamWorld classic(/*streaming=*/false);
  StreamWorld streamed(/*streaming=*/true);
  make_incremental(classic);
  make_incremental(streamed);
  classic.launch_and_run(10);
  streamed.launch_and_run(10);

  for (int i = 0; i < 3; ++i) {
    const CheckpointResult a = classic.engine->request_checkpoint(classic.kernel, classic.pid);
    const CheckpointResult b =
        streamed.engine->request_checkpoint(streamed.kernel, streamed.pid);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.pages, b.pages) << "delta " << i;
    EXPECT_EQ(a.payload_bytes, b.payload_bytes) << "delta " << i;
    // Raw bytes can only match while both worlds share a clock (the commit
    // itself costs different sim-time per mode, and taken_at is in the
    // prelude), so deltas compare as decoded images: same segments, same
    // pages, same contents.
    const auto img_a = classic.store->load(a.image_id, nullptr);
    const auto img_b = streamed.store->load(b.image_id, nullptr);
    ASSERT_TRUE(img_a.has_value() && img_b.has_value());
    EXPECT_TRUE(images_equal_memory(*img_a, *img_b)) << "delta " << i << " diverged";
    run_steps(classic.kernel, classic.pid, 10 * (i + 2));
    run_steps(streamed.kernel, streamed.pid, 10 * (i + 2));
  }
}

// --- Worker-count identity -------------------------------------------------

TEST_F(StreamingTest, OneAndEightWorkersCommitIdenticalBytesAndTime) {
  StreamWorld serial(/*streaming=*/true, /*workers=*/1);
  StreamWorld pooled(/*streaming=*/true, /*workers=*/8);
  serial.launch_and_run(30);
  pooled.launch_and_run(30);

  const CheckpointResult a = serial.engine->request_checkpoint(serial.kernel, serial.pid);
  const CheckpointResult b = pooled.engine->request_checkpoint(pooled.kernel, pooled.pid);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;

  // Results: same image, same simulated instants, same pause.
  EXPECT_EQ(a.image_id, b.image_id);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.pause_ns, b.pause_ns);
  // Clocks: the pipeline's charge replay must land the same total.
  EXPECT_EQ(serial.kernel.now(), pooled.kernel.now());

  // Bytes: every replica bit-identical.
  const auto blob_a = serial.local.read_blob(a.image_id, nullptr);
  const auto blob_b = pooled.local.read_blob(b.image_id, nullptr);
  ASSERT_TRUE(blob_a.has_value() && blob_b.has_value());
  EXPECT_EQ(*blob_a, *blob_b);
  const auto remote_a = serial.remote.read_blob(a.image_id, nullptr);
  const auto remote_b = pooled.remote.read_blob(b.image_id, nullptr);
  ASSERT_TRUE(remote_a.has_value() && remote_b.has_value());
  EXPECT_EQ(*remote_a, *remote_b);
}

TEST_F(StreamingTest, ChunkSizeNeverChangesTheBytes) {
  // stream_chunk_pages is a pipeline knob, not a format knob: any chunking
  // must concatenate to the same wire bytes.
  std::optional<std::vector<std::byte>> reference;
  for (const std::uint32_t chunk_pages : {1u, 3u, 64u, 1024u}) {
    StreamWorld world(/*streaming=*/true);
    EngineOptions engine_options = world.engine->options();
    engine_options.stream_chunk_pages = chunk_pages;
    world.engine.emplace("stream_chunk", &*world.store, engine_options, world.kernel,
                         SyscallEngine::TargetMode::kByPid, nullptr);
    world.launch_and_run(20);
    const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
    ASSERT_TRUE(cr.ok) << cr.error;
    const auto blob = world.local.read_blob(cr.image_id, nullptr);
    ASSERT_TRUE(blob.has_value());
    if (!reference.has_value()) {
      reference = *blob;
    } else {
      EXPECT_EQ(*reference, *blob) << "chunk_pages=" << chunk_pages;
    }
  }
}

// --- Pause -----------------------------------------------------------------

TEST_F(StreamingTest, ForkSnapshotPauseIsThePageTableWalkOnly) {
  StreamWorld world(/*streaming=*/true);
  world.launch_and_run(20, /*array_bytes=*/512 * 1024);
  const sim::Process& proc = world.kernel.process(world.pid);
  const std::uint64_t present = proc.aspace->present_page_count();
  const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
  ASSERT_TRUE(cr.ok) << cr.error;
  EXPECT_EQ(cr.pause_ns, world.kernel.costs().fork_cost(present));
  // The commit transfers the image after the fork: total latency dwarfs the
  // pause, which is the whole point of the streaming path.
  EXPECT_GT(cr.total_latency(), 10 * cr.pause_ns);
}

TEST_F(StreamingTest, StopTheWorldPaysTheWholeCommitAsPause) {
  StreamWorld world(/*streaming=*/false);
  EngineOptions engine_options = world.engine->options();
  engine_options.consistency = ConsistencyMode::kStopTarget;
  engine_options.streaming = false;
  world.engine.emplace("stop_world", &*world.store, engine_options, world.kernel,
                       SyscallEngine::TargetMode::kByPid, nullptr);
  world.launch_and_run(20, /*array_bytes=*/512 * 1024);
  const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
  ASSERT_TRUE(cr.ok) << cr.error;
  // Stopped for capture + serialize + both replica writes: the pause is
  // essentially the whole commit.
  EXPECT_GT(cr.pause_ns, cr.total_latency() / 2);
  EXPECT_TRUE(world.kernel.process(world.pid).runnable()) << "target never resumed";
}

// --- Fault paths and leak regression ---------------------------------------

/// Shadow-fork leak regression: whatever the storage does, a fork-and-copy
/// commit must leave no frozen child, no zombie, and no COW frames pinned.
TEST_F(StreamingTest, FailedCommitsAlwaysReapTheShadow) {
  for (const bool streaming : {false, true}) {
    StreamWorld world(streaming);
    world.launch_and_run(20);
    const std::uint64_t frames_baseline = world.kernel.physical_memory().frames_in_use();
    const std::size_t pids_baseline = world.kernel.live_pids().size();

    // Both replicas down: quorum fails, the commit fails.  (A full outage
    // rather than a one-shot reject — the streamed path retries a wounded
    // lane through the classic fallback, which would absorb a single
    // fault; the leak contract must hold when nothing works at all.)
    world.local.set_outage(true);
    world.remote.set_outage(true);
    const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
    EXPECT_FALSE(cr.ok);
    world.local.set_outage(false);
    world.remote.set_outage(false);

    EXPECT_EQ(world.kernel.physical_memory().frames_in_use(), frames_baseline)
        << (streaming ? "streamed" : "classic") << ": shadow frames leaked";
    EXPECT_EQ(world.kernel.live_pids().size(), pids_baseline)
        << (streaming ? "streamed" : "classic") << ": shadow process leaked";
    EXPECT_EQ(world.local.open_stages(), 0u) << "staged bytes leaked";
    EXPECT_EQ(world.remote.open_stages(), 0u) << "staged bytes leaked";

    // And the engine is not wedged: the next commit succeeds cleanly.
    const CheckpointResult retry = world.engine->request_checkpoint(world.kernel, world.pid);
    EXPECT_TRUE(retry.ok) << retry.error;
    EXPECT_EQ(world.kernel.physical_memory().frames_in_use(), frames_baseline);
    EXPECT_EQ(world.kernel.live_pids().size(), pids_baseline);
  }
}

TEST_F(StreamingTest, MidStreamFaultFallsBackAndCommitsIntact) {
  // A torn chunk append on one replica mid-stream: the seal's read-back
  // catches it, the wounded replica falls back to a whole-blob stage, and
  // the commit still reaches both replicas with intact bytes.
  StreamWorld world(/*streaming=*/true, /*workers=*/0, /*seed=*/0x57,
                    storage::RetryPolicy::bounded(3, 50 * kMillisecond));
  world.launch_and_run(20);
  inject::StorageInjector injector(world.local);
  injector.tear_store_after(/*skip_ops=*/3);

  const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
  ASSERT_TRUE(cr.ok) << cr.error;
  EXPECT_EQ(world.store->intact_replicas(cr.image_id), 2u);
  // The wounded replica's physical blob was re-staged whole, so its id
  // moved; it is the only blob the replica holds, and its bytes must equal
  // the streamed copy on the healthy replica.
  ASSERT_EQ(world.local.list().size(), 1u);
  const auto local_blob = world.local.read_blob(world.local.list().front(), nullptr);
  const auto remote_blob = world.remote.read_blob(cr.image_id, nullptr);
  ASSERT_TRUE(local_blob.has_value() && remote_blob.has_value());
  EXPECT_EQ(*local_blob, *remote_blob);
  EXPECT_EQ(world.local.open_stages(), 0u);
  EXPECT_EQ(world.remote.open_stages(), 0u);
}

TEST_F(StreamingTest, MidStreamFaultIsDeterministicAcrossWorkerCounts) {
  auto run_one = [](std::uint32_t workers) {
    StreamWorld world(/*streaming=*/true, workers, /*seed=*/0x57,
                      storage::RetryPolicy::bounded(3, 50 * kMillisecond));
    world.launch_and_run(30);
    inject::StorageInjector injector(world.remote);
    injector.fail_store_after(/*skip_ops=*/5);
    const CheckpointResult cr = world.engine->request_checkpoint(world.kernel, world.pid);
    EXPECT_TRUE(cr.ok) << cr.error;
    auto blob = world.local.read_blob(cr.image_id, nullptr);
    EXPECT_TRUE(blob.has_value());
    return std::make_tuple(cr.image_id, cr.completed_at, cr.pause_ns, world.kernel.now(),
                           blob.value_or(std::vector<std::byte>{}));
  };
  EXPECT_EQ(run_one(1), run_one(8)) << "mid-stream fault handling diverged across workers";
}

TEST_F(StreamingTest, AbortedKernelThreadSessionReapsTheShadow) {
  // The kernel-thread engine's abort path (source died mid-session) must
  // release the consistency protection: reap the frozen shadow, resume a
  // stopped target.  Killing the shadow itself forces that path.
  sim::SimKernel kernel(2, sim::CostModel{}, 0x57);
  storage::LocalDiskBackend backend(kernel.costs());
  EngineOptions engine_options;
  engine_options.consistency = ConsistencyMode::kForkAndCopy;
  KernelThreadEngine::ThreadConfig config;
  config.pages_per_step = 1;  // keep the session open across many quanta
  KernelThreadEngine engine("crak_abort", &backend, engine_options, kernel, config,
                            nullptr);

  sim::WriterConfig guest_config;
  guest_config.array_bytes = 256 * 1024;
  const sim::Pid pid =
      kernel.spawn(sim::DenseWriterGuest::kTypeName, guest_config.encode(),
                   sim::spawn_options_for_array(guest_config.array_bytes));
  run_steps(kernel, pid, 10);
  const std::size_t pids_before = kernel.live_pids().size();

  const std::uint64_t ticket = engine.request_checkpoint_async(kernel, pid);
  ASSERT_NE(ticket, 0u);
  kernel.run_until(kernel.now() + 4 * kernel.quantum());
  ASSERT_FALSE(engine.is_complete(ticket)) << "session finished before the kill landed";

  // The frozen shadow is the one stopped fork-child that appeared.
  sim::Pid shadow = sim::kNoPid;
  for (const sim::Pid p : kernel.live_pids()) {
    const sim::Process& proc = kernel.process(p);
    if (proc.is_checkpoint_shadow) shadow = p;
  }
  ASSERT_NE(shadow, sim::kNoPid);
  kernel.terminate(kernel.process(shadow), 9);

  kernel.run_while([&] { return !engine.is_complete(ticket); },
                   kernel.now() + 10 * kSecond);
  ASSERT_TRUE(engine.is_complete(ticket));
  EXPECT_FALSE(engine.result(ticket).ok);
  EXPECT_FALSE(kernel.pid_in_use(shadow)) << "aborted session leaked the shadow zombie";
  EXPECT_EQ(kernel.live_pids().size(), pids_before);
}

// --- Configuration guards ---------------------------------------------------

TEST_F(StreamingTest, StreamingRequiresForkAndCopy) {
  sim::SimKernel kernel(2, sim::CostModel{}, 1);
  storage::LocalDiskBackend backend(kernel.costs());
  EngineOptions engine_options;
  engine_options.streaming = true;
  engine_options.consistency = ConsistencyMode::kStopTarget;
  EXPECT_THROW(SyscallEngine("bad", &backend, engine_options, kernel,
                             SyscallEngine::TargetMode::kByPid, nullptr),
               std::invalid_argument);
  engine_options.consistency = ConsistencyMode::kForkAndCopy;
  engine_options.stream_chunk_pages = 0;
  EXPECT_THROW(SyscallEngine("bad2", &backend, engine_options, kernel,
                             SyscallEngine::TargetMode::kByPid, nullptr),
               std::invalid_argument);
}

TEST_F(StreamingTest, NonReplicatedBackendFallsBackToClassicStore) {
  // streaming over a plain blob store degrades gracefully: classic capture
  // from the shadow, same image, still the short fork pause.
  sim::SimKernel kernel(2, sim::CostModel{}, 0x57);
  storage::LocalDiskBackend backend(kernel.costs());
  EngineOptions engine_options;
  engine_options.consistency = ConsistencyMode::kForkAndCopy;
  engine_options.streaming = true;
  SyscallEngine engine("fallback", &backend, engine_options, kernel,
                       SyscallEngine::TargetMode::kByPid, nullptr);
  sim::register_standard_guests();
  const sim::Pid pid = kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel, pid, 5);
  const CheckpointResult cr = engine.request_checkpoint(kernel, pid);
  ASSERT_TRUE(cr.ok) << cr.error;
  EXPECT_TRUE(backend.load(cr.image_id, nullptr).has_value());
}

}  // namespace
}  // namespace ckpt::core
