// Crash/restart torture soak (ctest label: torture).
//
// Runs the randomized fault-injection harness (src/inject/torture.hpp)
// against every engine in the default battery: ≥500 checkpoint–crash–restart
// cycles total, all driven from one seed.  The harness itself detects the
// three violation classes (state divergence, restart-from-garbage, restart
// failure despite an intact image); these tests assert all three stayed at
// zero and that the whole soak is bit-reproducible from the seed.
#include <gtest/gtest.h>

#include "inject/torture.hpp"

namespace ckpt::inject {
namespace {

constexpr std::uint64_t kSoakSeed = 0x5eed2026;
constexpr std::uint64_t kCyclesPerEngine = 110;

TortureOptions soak_options() {
  TortureOptions options;
  options.seed = kSoakSeed;
  options.cycles = kCyclesPerEngine;
  return options;
}

TEST(TortureSoak, FiveHundredCyclesAcrossTheBattery) {
  const std::vector<TortureTarget> targets = default_targets();
  ASSERT_GE(targets.size(), 3u);

  TortureHarness harness(soak_options());
  const std::vector<TortureReport> reports = harness.run_all(targets);

  std::uint64_t total_cycles = 0;
  for (const TortureReport& report : reports) {
    SCOPED_TRACE(report.summary());
    total_cycles += report.cycles;

    // The soak must actually exercise the machinery, not just spin.
    EXPECT_GT(report.checkpoints_ok, 0u) << report.engine;
    EXPECT_GT(report.restarts_ok, 0u) << report.engine;
    // Every fault kind in the default mix was drawn at least once.
    for (const FaultPlan::Weighted& entry : FaultPlan::default_mix()) {
      EXPECT_TRUE(report.faults.count(entry.kind))
          << report.engine << " never drew " << to_string(entry.kind);
    }

    // The actual torture verdicts: no divergence, no restart from garbage,
    // no lost restart despite surviving images.
    EXPECT_EQ(report.divergences, 0u);
    EXPECT_EQ(report.corrupt_restarts, 0u);
    EXPECT_EQ(report.unexpected_failures, 0u);
    EXPECT_TRUE(report.ok());
    for (const std::string& diagnostic : report.diagnostics) {
      ADD_FAILURE() << report.engine << ": " << diagnostic;
    }
  }
  EXPECT_GE(total_cycles, 500u);
}

TEST(TortureSoak, FaultsActuallyBite) {
  // With every storage fault in the mix, some checkpoints must fail and
  // some restarts must be (correctly) refused — otherwise the injectors
  // are dead code and the zero-violation result above proves nothing.
  TortureHarness harness(soak_options());
  std::uint64_t failed = 0;
  std::uint64_t refused = 0;
  for (const TortureReport& report : harness.run_all(default_targets())) {
    failed += report.checkpoints_failed;
    refused += report.restarts_refused;
  }
  EXPECT_GT(failed, 0u);
  EXPECT_GT(refused, 0u);
}

TEST(TortureSoak, ReproducibleFromSeed) {
  TortureOptions options;
  options.seed = 77;
  options.cycles = 40;

  const TortureTarget crak{"CRAK", nullptr};
  const TortureReport first = TortureHarness(options).run(crak);
  const TortureReport second = TortureHarness(options).run(crak);
  EXPECT_EQ(first, second) << "same seed must replay the identical soak";

  options.seed = 78;
  const TortureReport other = TortureHarness(options).run(crak);
  EXPECT_NE(first, other) << "different seeds must produce different schedules";
}

TEST(TortureSoak, UnknownMechanismIsRejected) {
  TortureHarness harness(soak_options());
  EXPECT_THROW(harness.run(TortureTarget{"NoSuchSystem", nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace ckpt::inject
