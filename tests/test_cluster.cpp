#include <gtest/gtest.h>

#include <set>

#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "core/capture.hpp"
#include "core/engine.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class ClusterTest : public SimTest {};

TEST_F(ClusterTest, NodesRunInLockstep) {
  Cluster cluster(3, NodeConfig{});
  std::vector<sim::Pid> pids;
  for (int i = 0; i < 3; ++i) {
    pids.push_back(cluster.node(i).kernel().spawn(sim::CounterGuest::kTypeName));
  }
  cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(cluster.now(), 50 * kMillisecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(cluster.node(i).kernel().process(pids[i]).stats.guest_iterations, 0u);
    EXPECT_GE(cluster.node(i).kernel().now(), 50 * kMillisecond);
  }
}

TEST_F(ClusterTest, FailStopKillsProcessesAndDisk) {
  Cluster cluster(2, NodeConfig{});
  cluster.node(0).kernel().spawn(sim::CounterGuest::kTypeName);
  const storage::ImageId id =
      cluster.node(0).disk().store(storage::CheckpointImage{}, nullptr);
  ASSERT_NE(id, storage::kBadImageId);

  int observed_failure = -1;
  cluster.on_failure([&](Cluster&, int node) { observed_failure = node; });
  cluster.fail_node(0);

  EXPECT_EQ(observed_failure, 0);  // fail-stop: always detected
  EXPECT_FALSE(cluster.node(0).up());
  EXPECT_FALSE(cluster.node(0).disk().load(id, nullptr).has_value());
  EXPECT_EQ(cluster.up_nodes(), std::vector<int>{1});
}

TEST_F(ClusterTest, RepairBootsFreshKernelWithClusterTime) {
  Cluster cluster(2, NodeConfig{});
  cluster.node(0).kernel().spawn(sim::CounterGuest::kTypeName);
  cluster.run_until(20 * kMillisecond);
  cluster.fail_node(0);
  cluster.run_until(40 * kMillisecond);
  cluster.repair_node(0);
  EXPECT_TRUE(cluster.node(0).up());
  EXPECT_TRUE(cluster.node(0).kernel().live_pids().empty());  // processes gone
  EXPECT_GE(cluster.node(0).kernel().now(), 40 * kMillisecond);
}

TEST_F(ClusterTest, EventsFireInOrder) {
  Cluster cluster(1, NodeConfig{});
  std::vector<int> order;
  cluster.add_event(30 * kMillisecond, [&](Cluster&) { order.push_back(3); });
  cluster.add_event(10 * kMillisecond, [&](Cluster&) { order.push_back(1); });
  cluster.add_event(20 * kMillisecond, [&](Cluster&) { order.push_back(2); });
  cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(ClusterTest, FailureInjectorIsDeterministic) {
  auto count_failures = [](std::uint64_t seed) {
    Cluster cluster(8, NodeConfig{});
    FailureModel model;
    model.mtbf = 2 * kSecond;
    model.repair_time = 500 * kMillisecond;
    model.seed = seed;
    FailureInjector injector(cluster, model);
    injector.arm(20 * kSecond);
    cluster.run_until(20 * kSecond, 100 * kMillisecond);
    return injector.failures_injected();
  };
  const auto a = count_failures(7);
  const auto b = count_failures(7);
  const auto c = count_failures(8);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  (void)c;  // different seed may or may not differ; determinism is the claim
}

TEST_F(ClusterTest, FailureScheduleIsSeedDeterministicPerDistribution) {
  // Stronger than counting failures: the full armed schedule — which node
  // fails at which cluster time, including post-repair rescheduling — must
  // replay exactly from the seed, for both supported distributions.
  auto schedule_for = [](FailureModel::Kind kind, std::uint64_t seed) {
    Cluster cluster(8, NodeConfig{});
    FailureModel model;
    model.kind = kind;
    model.mtbf = 2 * kSecond;
    model.weibull_shape = 0.7;
    model.repair_time = 500 * kMillisecond;
    model.seed = seed;
    FailureInjector injector(cluster, model);
    injector.arm(20 * kSecond);
    cluster.run_until(20 * kSecond, 100 * kMillisecond);
    return injector.schedule();
  };

  for (const FailureModel::Kind kind :
       {FailureModel::Kind::kExponential, FailureModel::Kind::kWeibull}) {
    const std::vector<ScheduledFailure> a = schedule_for(kind, 7);
    const std::vector<ScheduledFailure> b = schedule_for(kind, 7);
    const std::vector<ScheduledFailure> c = schedule_for(kind, 8);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);  // identical seed ⇒ identical schedule
    EXPECT_NE(a, c);  // different seed ⇒ different schedule
  }

  // The two distributions must not collapse onto the same schedule either.
  EXPECT_NE(schedule_for(FailureModel::Kind::kExponential, 7),
            schedule_for(FailureModel::Kind::kWeibull, 7));
}

TEST_F(ClusterTest, ExponentialFailuresScaleWithMtbf) {
  auto failures_with_mtbf = [](SimTime mtbf) {
    Cluster cluster(16, NodeConfig{});
    FailureModel model;
    model.mtbf = mtbf;
    model.repair_time = 100 * kMillisecond;
    FailureInjector injector(cluster, model);
    injector.arm(30 * kSecond);
    cluster.run_until(30 * kSecond, 100 * kMillisecond);
    return injector.failures_injected();
  };
  EXPECT_GT(failures_with_mtbf(1 * kSecond), failures_with_mtbf(10 * kSecond));
}

TEST_F(ClusterTest, RepairTimeZeroMeansNeverRepaired) {
  // Satellite contract the fleet's spare-pool accounting depends on:
  // repair_time = 0 is "never repaired" — a failed node stays down, no
  // repair event fires, and no follow-up failure is ever armed, so the
  // schedule is stable after arm() with at most one entry per node.
  Cluster cluster(32, NodeConfig{});
  FailureModel model;
  model.mtbf = 5 * kSecond;
  model.repair_time = 0;
  model.seed = 13;
  FailureInjector injector(cluster, model);
  injector.arm(60 * kSecond);

  const std::vector<ScheduledFailure> armed = injector.schedule();
  ASSERT_FALSE(armed.empty());
  EXPECT_LE(armed.size(), 32u);
  std::set<int> nodes_scheduled;
  for (const ScheduledFailure& f : armed) {
    EXPECT_TRUE(nodes_scheduled.insert(f.node_id).second)
        << "node " << f.node_id << " armed twice despite repair_time = 0";
  }

  cluster.advance(60 * kSecond);
  EXPECT_EQ(injector.failures_injected(), armed.size());
  EXPECT_EQ(injector.schedule(), armed);  // stable: nothing was re-armed
  for (const ScheduledFailure& f : armed) {
    EXPECT_FALSE(cluster.node(f.node_id).up());
  }

  // Long after the horizon: still no repairs, no new failures.
  cluster.advance(10 * 60 * kSecond);
  EXPECT_EQ(injector.failures_injected(), armed.size());
  EXPECT_EQ(injector.schedule(), armed);
  for (const ScheduledFailure& f : armed) {
    EXPECT_FALSE(cluster.node(f.node_id).up());
  }
}

TEST_F(ClusterTest, WeibullShapeControlsInfantMortality) {
  // Distribution-shape regression: with shape < 1 failures front-load
  // (infant mortality), with shape > 1 they back-load (wear-out), and the
  // sample mean matches the configured MTBF for every path.
  constexpr int kNodes = 512;
  const SimTime mtbf = 100 * kSecond;
  auto first_draws = [&](FailureModel::Kind kind, double shape) {
    Cluster cluster(kNodes, NodeConfig{});
    FailureModel model;
    model.kind = kind;
    model.mtbf = mtbf;
    model.weibull_shape = shape;
    model.repair_time = 0;  // exactly one draw per node
    model.seed = 29;
    FailureInjector injector(cluster, model);
    injector.arm(40 * mtbf);  // wide horizon: truncation is negligible
    return injector.schedule();
  };
  auto early_fraction = [&](const std::vector<ScheduledFailure>& draws) {
    std::size_t early = 0;
    for (const ScheduledFailure& f : draws) {
      if (f.at < mtbf / 10) ++early;
    }
    return static_cast<double>(early) / static_cast<double>(draws.size());
  };
  auto mean = [](const std::vector<ScheduledFailure>& draws) {
    double sum = 0;
    for (const ScheduledFailure& f : draws) sum += static_cast<double>(f.at);
    return sum / static_cast<double>(draws.size());
  };

  const auto infant = first_draws(FailureModel::Kind::kWeibull, 0.7);
  const auto memoryless = first_draws(FailureModel::Kind::kExponential, 0.7);
  const auto wearout = first_draws(FailureModel::Kind::kWeibull, 2.0);
  ASSERT_GE(infant.size(), 500u);
  ASSERT_GE(memoryless.size(), 500u);
  ASSERT_GE(wearout.size(), 500u);

  // Analytic fractions below 0.1*MTBF: ~0.21 (k=0.7) > ~0.095 (exp) >
  // ~0.008 (k=2).  With 512 samples the ordering has huge margin.
  EXPECT_GT(early_fraction(infant), early_fraction(memoryless) + 0.05);
  EXPECT_GT(early_fraction(memoryless), early_fraction(wearout) + 0.05);

  const auto m = static_cast<double>(mtbf);
  EXPECT_NEAR(mean(infant), m, 0.15 * m);
  EXPECT_NEAR(mean(memoryless), m, 0.15 * m);
  EXPECT_NEAR(mean(wearout), m, 0.15 * m);
}

TEST_F(ClusterTest, WeibullPathIsDeterministicAcrossRepairCycles) {
  // The Weibull sampling path must replay exactly through post-repair
  // rescheduling — the same seed and cluster evolution yields the same
  // full schedule, including the entries armed after each repair.
  auto schedule_for = [] {
    Cluster cluster(8, NodeConfig{});
    FailureModel model;
    model.kind = FailureModel::Kind::kWeibull;
    model.mtbf = 2 * kSecond;
    model.weibull_shape = 0.7;
    model.repair_time = 300 * kMillisecond;
    model.seed = 31;
    FailureInjector injector(cluster, model);
    injector.arm(30 * kSecond);
    cluster.advance(30 * kSecond);
    return injector.schedule();
  };
  const std::vector<ScheduledFailure> a = schedule_for();
  const std::vector<ScheduledFailure> b = schedule_for();
  ASSERT_GT(a.size(), 8u);  // post-repair rescheduling actually happened
  EXPECT_EQ(a, b);
}

TEST_F(ClusterTest, RemoteStorageSurvivesNodeFailure) {
  // Claim C8 in miniature: the checkpoint written remotely is retrievable
  // after the node dies; the local one is not.
  Cluster cluster(2, NodeConfig{});
  sim::SimKernel& kernel = cluster.node(0).kernel();
  const sim::Pid pid = kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel, pid, 10);
  const auto image =
      core::capture_kernel_level(kernel, kernel.process(pid), core::CaptureOptions{});
  const storage::ImageId local_id = cluster.node(0).disk().store(image, nullptr);
  const storage::ImageId remote_id = cluster.remote_storage().store(image, nullptr);

  cluster.fail_node(0);

  EXPECT_FALSE(cluster.node(0).disk().load(local_id, nullptr).has_value());
  const auto recovered = cluster.remote_storage().load(remote_id, nullptr);
  ASSERT_TRUE(recovered.has_value());

  // Restart the work on the surviving node.
  const auto result = core::restart_from_image(cluster.node(1).kernel(), *recovered);
  ASSERT_TRUE(result.ok);
  sim::Process& revived = cluster.node(1).kernel().process(result.pid);
  EXPECT_GT(sim::CounterGuest::read_counter(cluster.node(1).kernel(), revived), 0u);
}

}  // namespace
}  // namespace ckpt::cluster
