#include <gtest/gtest.h>

#include "cluster/failure.hpp"
#include "cluster/node.hpp"
#include "core/capture.hpp"
#include "core/engine.hpp"
#include "test_common.hpp"

namespace ckpt::cluster {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class ClusterTest : public SimTest {};

TEST_F(ClusterTest, NodesRunInLockstep) {
  Cluster cluster(3, NodeConfig{});
  std::vector<sim::Pid> pids;
  for (int i = 0; i < 3; ++i) {
    pids.push_back(cluster.node(i).kernel().spawn(sim::CounterGuest::kTypeName));
  }
  cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(cluster.now(), 50 * kMillisecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(cluster.node(i).kernel().process(pids[i]).stats.guest_iterations, 0u);
    EXPECT_GE(cluster.node(i).kernel().now(), 50 * kMillisecond);
  }
}

TEST_F(ClusterTest, FailStopKillsProcessesAndDisk) {
  Cluster cluster(2, NodeConfig{});
  cluster.node(0).kernel().spawn(sim::CounterGuest::kTypeName);
  const storage::ImageId id =
      cluster.node(0).disk().store(storage::CheckpointImage{}, nullptr);
  ASSERT_NE(id, storage::kBadImageId);

  int observed_failure = -1;
  cluster.on_failure([&](Cluster&, int node) { observed_failure = node; });
  cluster.fail_node(0);

  EXPECT_EQ(observed_failure, 0);  // fail-stop: always detected
  EXPECT_FALSE(cluster.node(0).up());
  EXPECT_FALSE(cluster.node(0).disk().load(id, nullptr).has_value());
  EXPECT_EQ(cluster.up_nodes(), std::vector<int>{1});
}

TEST_F(ClusterTest, RepairBootsFreshKernelWithClusterTime) {
  Cluster cluster(2, NodeConfig{});
  cluster.node(0).kernel().spawn(sim::CounterGuest::kTypeName);
  cluster.run_until(20 * kMillisecond);
  cluster.fail_node(0);
  cluster.run_until(40 * kMillisecond);
  cluster.repair_node(0);
  EXPECT_TRUE(cluster.node(0).up());
  EXPECT_TRUE(cluster.node(0).kernel().live_pids().empty());  // processes gone
  EXPECT_GE(cluster.node(0).kernel().now(), 40 * kMillisecond);
}

TEST_F(ClusterTest, EventsFireInOrder) {
  Cluster cluster(1, NodeConfig{});
  std::vector<int> order;
  cluster.add_event(30 * kMillisecond, [&](Cluster&) { order.push_back(3); });
  cluster.add_event(10 * kMillisecond, [&](Cluster&) { order.push_back(1); });
  cluster.add_event(20 * kMillisecond, [&](Cluster&) { order.push_back(2); });
  cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(ClusterTest, FailureInjectorIsDeterministic) {
  auto count_failures = [](std::uint64_t seed) {
    Cluster cluster(8, NodeConfig{});
    FailureModel model;
    model.mtbf = 2 * kSecond;
    model.repair_time = 500 * kMillisecond;
    model.seed = seed;
    FailureInjector injector(cluster, model);
    injector.arm(20 * kSecond);
    cluster.run_until(20 * kSecond, 100 * kMillisecond);
    return injector.failures_injected();
  };
  const auto a = count_failures(7);
  const auto b = count_failures(7);
  const auto c = count_failures(8);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  (void)c;  // different seed may or may not differ; determinism is the claim
}

TEST_F(ClusterTest, FailureScheduleIsSeedDeterministicPerDistribution) {
  // Stronger than counting failures: the full armed schedule — which node
  // fails at which cluster time, including post-repair rescheduling — must
  // replay exactly from the seed, for both supported distributions.
  auto schedule_for = [](FailureModel::Kind kind, std::uint64_t seed) {
    Cluster cluster(8, NodeConfig{});
    FailureModel model;
    model.kind = kind;
    model.mtbf = 2 * kSecond;
    model.weibull_shape = 0.7;
    model.repair_time = 500 * kMillisecond;
    model.seed = seed;
    FailureInjector injector(cluster, model);
    injector.arm(20 * kSecond);
    cluster.run_until(20 * kSecond, 100 * kMillisecond);
    return injector.schedule();
  };

  for (const FailureModel::Kind kind :
       {FailureModel::Kind::kExponential, FailureModel::Kind::kWeibull}) {
    const std::vector<ScheduledFailure> a = schedule_for(kind, 7);
    const std::vector<ScheduledFailure> b = schedule_for(kind, 7);
    const std::vector<ScheduledFailure> c = schedule_for(kind, 8);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);  // identical seed ⇒ identical schedule
    EXPECT_NE(a, c);  // different seed ⇒ different schedule
  }

  // The two distributions must not collapse onto the same schedule either.
  EXPECT_NE(schedule_for(FailureModel::Kind::kExponential, 7),
            schedule_for(FailureModel::Kind::kWeibull, 7));
}

TEST_F(ClusterTest, ExponentialFailuresScaleWithMtbf) {
  auto failures_with_mtbf = [](SimTime mtbf) {
    Cluster cluster(16, NodeConfig{});
    FailureModel model;
    model.mtbf = mtbf;
    model.repair_time = 100 * kMillisecond;
    FailureInjector injector(cluster, model);
    injector.arm(30 * kSecond);
    cluster.run_until(30 * kSecond, 100 * kMillisecond);
    return injector.failures_injected();
  };
  EXPECT_GT(failures_with_mtbf(1 * kSecond), failures_with_mtbf(10 * kSecond));
}

TEST_F(ClusterTest, RemoteStorageSurvivesNodeFailure) {
  // Claim C8 in miniature: the checkpoint written remotely is retrievable
  // after the node dies; the local one is not.
  Cluster cluster(2, NodeConfig{});
  sim::SimKernel& kernel = cluster.node(0).kernel();
  const sim::Pid pid = kernel.spawn(sim::CounterGuest::kTypeName);
  run_steps(kernel, pid, 10);
  const auto image =
      core::capture_kernel_level(kernel, kernel.process(pid), core::CaptureOptions{});
  const storage::ImageId local_id = cluster.node(0).disk().store(image, nullptr);
  const storage::ImageId remote_id = cluster.remote_storage().store(image, nullptr);

  cluster.fail_node(0);

  EXPECT_FALSE(cluster.node(0).disk().load(local_id, nullptr).has_value());
  const auto recovered = cluster.remote_storage().load(remote_id, nullptr);
  ASSERT_TRUE(recovered.has_value());

  // Restart the work on the surviving node.
  const auto result = core::restart_from_image(cluster.node(1).kernel(), *recovered);
  ASSERT_TRUE(result.ok);
  sim::Process& revived = cluster.node(1).kernel().process(result.pid);
  EXPECT_GT(sim::CounterGuest::read_counter(cluster.node(1).kernel(), revived), 0u);
}

}  // namespace
}  // namespace ckpt::cluster
