// ReplicatedStore (two-phase publish, quorum, failover, scrub) and
// RetryPolicy (determinism, deadline, zero-retry degradation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/backend.hpp"
#include "storage/image.hpp"
#include "storage/replicated.hpp"
#include "storage/retry.hpp"
#include "util/crc64.hpp"
#include "util/threadpool.hpp"

namespace ckpt::storage {
namespace {

CheckpointImage make_image(std::uint64_t tag) {
  CheckpointImage image;
  image.kind = ImageKind::kFull;
  image.pid = 42;
  image.process_name = "app";
  image.taken_at = tag;
  image.threads.push_back(ThreadImage{1, {}});
  image.threads[0].regs.pc = tag;
  MemorySegmentImage seg;
  seg.vma = sim::Vma{sim::page_of(0x10000), 1, sim::kProtRW, sim::VmaKind::kData, "data"};
  PageImage page;
  page.page = seg.vma.first_page;
  page.data.assign(sim::kPageSize, static_cast<std::byte>(tag & 0xFF));
  seg.pages.push_back(std::move(page));
  image.segments.push_back(std::move(seg));
  return image;
}

RetryPolicy retrying(std::uint64_t retries) {
  RetryPolicy policy = RetryPolicy::bounded(retries, /*deadline=*/0);
  return policy;
}

class ReplicatedTest : public ::testing::Test {
 protected:
  sim::CostModel costs_{};
  LocalDiskBackend local_{costs_};
  RemoteBackend remote_{costs_};

  ReplicatedStore make_store(ReplicatedOptions options = {}) {
    return ReplicatedStore({&local_, &remote_}, options);
  }
};

TEST_F(ReplicatedTest, StoreFansOutToEveryReplica) {
  ReplicatedStore store = make_store();
  const StoreReceipt receipt = store.store_verbose(make_image(1), nullptr);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.committed_replicas, 2u);
  EXPECT_EQ(receipt.retries, 0u);
  EXPECT_EQ(receipt.last_error, StoreErrorKind::kNone);
  EXPECT_EQ(store.intact_replicas(receipt.id), 2u);
  EXPECT_TRUE(store.load_from(0, receipt.id, nullptr).has_value());
  EXPECT_TRUE(store.load_from(1, receipt.id, nullptr).has_value());
  const auto loaded = store.load(receipt.id, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->taken_at, 1u);
}

TEST_F(ReplicatedTest, ConstructorRejectsBadConfigurations) {
  EXPECT_THROW(ReplicatedStore({}, {}), std::invalid_argument);
  EXPECT_THROW(ReplicatedStore({&local_, nullptr}, {}), std::invalid_argument);
  ReplicatedOptions options;
  options.write_quorum = 3;  // only two replicas
  EXPECT_THROW(ReplicatedStore({&local_, &remote_}, options), std::invalid_argument);
  options.write_quorum = 0;
  EXPECT_THROW(ReplicatedStore({&local_, &remote_}, options), std::invalid_argument);
}

// --- Two-phase atomic publish ----------------------------------------------

TEST_F(ReplicatedTest, TornStageIsCaughtRolledBackAndSurfaced) {
  // No retries: the torn copy must simply not commit on that replica — the
  // peer's verified copy carries the quorum — and the underlying fault is
  // visible in the receipt.
  ReplicatedStore store = make_store();
  local_.inject_store_fault(StoreFault::kTornWrite);
  const StoreReceipt receipt = store.store_verbose(make_image(2), nullptr);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.committed_replicas, 1u);
  EXPECT_EQ(receipt.last_error, StoreErrorKind::kTornWrite);
  EXPECT_TRUE(local_.list().empty());  // staged torn blob was rolled back
  EXPECT_FALSE(store.load_from(0, receipt.id, nullptr).has_value());
  EXPECT_TRUE(store.load_from(1, receipt.id, nullptr).has_value());
}

TEST_F(ReplicatedTest, TornStageHealsUnderRetry) {
  // Injected faults are one-shot, so a single retry re-stages an intact
  // copy: the commit reaches full width again.
  ReplicatedOptions options;
  options.retry = retrying(2);
  ReplicatedStore store = make_store(options);
  local_.inject_store_fault(StoreFault::kTornWrite);
  const StoreReceipt receipt = store.store_verbose(make_image(3), nullptr);
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.committed_replicas, 2u);
  EXPECT_GE(receipt.retries, 1u);
  EXPECT_TRUE(store.load_from(0, receipt.id, nullptr).has_value());
}

TEST_F(ReplicatedTest, QuorumFailureLeavesNoTrace) {
  ReplicatedOptions options;
  options.write_quorum = 2;
  ReplicatedStore store = make_store(options);
  local_.inject_store_fault(StoreFault::kReject);
  const StoreReceipt receipt = store.store_verbose(make_image(4), nullptr);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.last_error, StoreErrorKind::kRejected);
  // Atomicity: the remote stage that *did* verify was rolled back, nothing
  // is half-visible anywhere.
  EXPECT_TRUE(store.list().empty());
  EXPECT_TRUE(local_.list().empty());
  EXPECT_TRUE(remote_.list().empty());
  EXPECT_FALSE(store.any_intact_committed());
}

TEST_F(ReplicatedTest, TotalOutageFailsWithUnreachable) {
  ReplicatedStore store = make_store();
  local_.set_outage(true);
  remote_.set_outage(true);
  const StoreReceipt receipt = store.store_verbose(make_image(5), nullptr);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.last_error, StoreErrorKind::kUnreachable);
  EXPECT_FALSE(store.reachable());
  local_.set_outage(false);
  EXPECT_TRUE(store.reachable());
}

// --- Quorum-verified reads with failover -----------------------------------

TEST_F(ReplicatedTest, LoadFailsOverPastCorruptReplica) {
  ReplicatedStore store = make_store();
  const ImageId id = store.store(make_image(6), nullptr);
  ASSERT_NE(id, kBadImageId);
  ASSERT_TRUE(local_.corrupt_blob(local_.newest_id(), 13, 3));

  EXPECT_FALSE(store.load_from(0, id, nullptr).has_value());  // CRC vetoes
  EXPECT_EQ(store.intact_replicas(id), 1u);
  const auto loaded = store.load(id, nullptr);  // silently fails over
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->taken_at, 6u);
}

TEST_F(ReplicatedTest, LoadFailsOverPastUnreachableReplica) {
  ReplicatedStore store = make_store();
  const ImageId id = store.store(make_image(7), nullptr);
  local_.fail_node();
  EXPECT_TRUE(store.load(id, nullptr).has_value());
  remote_.set_outage(true);
  EXPECT_FALSE(store.load(id, nullptr).has_value());
}

TEST_F(ReplicatedTest, EraseRemovesEveryCopy) {
  ReplicatedStore store = make_store();
  const ImageId id = store.store(make_image(8), nullptr);
  EXPECT_TRUE(store.erase(id));
  EXPECT_FALSE(store.erase(id));
  EXPECT_TRUE(local_.list().empty());
  EXPECT_TRUE(remote_.list().empty());
  EXPECT_TRUE(store.list().empty());
}

// --- Scrub: detect and repair ----------------------------------------------

TEST_F(ReplicatedTest, ScrubRepairsCorruptCopyFromHealthyPeer) {
  ReplicatedStore store = make_store();
  const ImageId id = store.store(make_image(9), nullptr);
  ASSERT_TRUE(local_.corrupt_blob(local_.newest_id(), 0, 4));
  ASSERT_EQ(store.intact_replicas(id), 1u);

  const ScrubReport report = store.scrub(nullptr);
  EXPECT_EQ(report.entries, 1u);
  EXPECT_EQ(report.corrupt_found, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.unrepairable, 0u);
  EXPECT_EQ(store.intact_replicas(id), 2u);
  EXPECT_TRUE(store.load_from(0, id, nullptr).has_value());

  // A second pass finds nothing left to do.
  const ScrubReport again = store.scrub(nullptr);
  EXPECT_TRUE(again.clean());
  EXPECT_EQ(again.repaired, 0u);
}

TEST_F(ReplicatedTest, ScrubReplicatesEntriesMissedDuringOutage) {
  ReplicatedStore store = make_store();
  remote_.set_outage(true);
  const ImageId id = store.store(make_image(10), nullptr);  // local copy only
  ASSERT_NE(id, kBadImageId);
  remote_.set_outage(false);

  const ScrubReport report = store.scrub(nullptr);
  EXPECT_EQ(report.missing_found, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(store.intact_replicas(id), 2u);
  EXPECT_TRUE(store.load_from(1, id, nullptr).has_value());
}

TEST_F(ReplicatedTest, ScrubSkipsUnreachableReplicas) {
  ReplicatedStore store = make_store();
  store.store(make_image(11), nullptr);
  remote_.set_outage(true);
  const ScrubReport report = store.scrub(nullptr);
  EXPECT_EQ(report.skipped_unreachable, 1u);
  EXPECT_EQ(report.repaired, 0u);
}

TEST_F(ReplicatedTest, ScrubReportsUnrepairableWhenNoPeerSurvives) {
  ReplicatedStore store({&local_}, {});
  const ImageId id = store.store(make_image(12), nullptr);
  ASSERT_TRUE(local_.corrupt_blob(local_.newest_id(), 2, 2));
  const ScrubReport report = store.scrub(nullptr);
  EXPECT_EQ(report.corrupt_found, 1u);
  EXPECT_EQ(report.unrepairable, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(store.intact_replicas(id), 0u);
  EXPECT_FALSE(store.any_intact_committed());
}

TEST_F(ReplicatedTest, RetargetThenScrubReReplicatesHistory) {
  ReplicatedStore store = make_store();
  const ImageId a = store.store(make_image(13), nullptr);
  const ImageId b = store.store(make_image(14), nullptr);

  // Failover: slot 0 becomes a blank replacement disk.
  LocalDiskBackend replacement{costs_};
  store.retarget_replica(0, &replacement);
  EXPECT_FALSE(store.load_from(0, a, nullptr).has_value());
  EXPECT_FALSE(store.load_from(0, b, nullptr).has_value());

  const ScrubReport report = store.scrub(nullptr);
  EXPECT_EQ(report.missing_found, 2u);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_TRUE(store.load_from(0, a, nullptr).has_value());
  EXPECT_TRUE(store.load_from(0, b, nullptr).has_value());
  EXPECT_EQ(replacement.list().size(), 2u);

  EXPECT_THROW(store.retarget_replica(5, &replacement), std::invalid_argument);
  EXPECT_THROW(store.retarget_replica(0, nullptr), std::invalid_argument);
}

TEST_F(ReplicatedTest, NewestCommittedTracksManifestOrder) {
  ReplicatedStore store = make_store();
  EXPECT_EQ(store.newest_committed(), kBadImageId);
  store.store(make_image(1), nullptr);
  const ImageId newest = store.store(make_image(2), nullptr);
  EXPECT_EQ(store.newest_committed(), newest);
  EXPECT_TRUE(store.any_intact_committed());
}

// --- RetryPolicy / Retrier ---------------------------------------------------

TEST(RetryPolicy, BackoffScheduleIsDeterministicFromSeed) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.jitter_seed = 0xABCD;

  auto schedule = [](const RetryPolicy& p, std::uint64_t salt) {
    Retrier retrier(p, salt);
    std::vector<SimTime> delays;
    while (const auto d = retrier.next_delay()) delays.push_back(*d);
    return delays;
  };

  const auto first = schedule(policy, 7);
  const auto second = schedule(policy, 7);
  EXPECT_EQ(first, second) << "same (policy, seed, salt) must replay exactly";
  EXPECT_EQ(first.size(), 5u);  // max_attempts - 1 retries

  EXPECT_NE(first, schedule(policy, 8)) << "salt must decorrelate operations";
  policy.jitter_seed = 0xABCE;
  EXPECT_NE(first, schedule(policy, 7)) << "seed must change the schedule";
}

TEST(RetryPolicy, ExponentialBackoffWithoutJitterIsExact) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 1 * kMillisecond;
  policy.multiplier = 2.0;
  policy.max_backoff = 100 * kMillisecond;
  policy.jitter = 0.0;
  Retrier retrier(policy);
  EXPECT_EQ(retrier.next_delay(), std::optional<SimTime>(1 * kMillisecond));
  EXPECT_EQ(retrier.next_delay(), std::optional<SimTime>(2 * kMillisecond));
  EXPECT_EQ(retrier.next_delay(), std::optional<SimTime>(4 * kMillisecond));
  EXPECT_EQ(retrier.next_delay(), std::optional<SimTime>(8 * kMillisecond));
  EXPECT_EQ(retrier.next_delay(), std::nullopt);
  EXPECT_EQ(retrier.retries(), 4u);
  EXPECT_EQ(retrier.delayed(), 15 * kMillisecond);
}

TEST(RetryPolicy, DeadlineClampsAndStopsTheSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff = 2 * kMillisecond;
  policy.jitter = 0.0;
  policy.deadline = 3 * kMillisecond;
  Retrier retrier(policy);
  EXPECT_EQ(retrier.next_delay(), std::optional<SimTime>(2 * kMillisecond));
  // The second backoff (4ms) is clamped to the 1ms of budget left...
  EXPECT_EQ(retrier.next_delay(), std::optional<SimTime>(1 * kMillisecond));
  // ...and the budget being spent ends the schedule.
  EXPECT_EQ(retrier.next_delay(), std::nullopt);
  EXPECT_EQ(retrier.delayed(), 3 * kMillisecond);
}

TEST(RetryPolicy, ZeroRetryDefaultDegradesToSingleAttempt) {
  Retrier retrier{RetryPolicy{}};
  EXPECT_EQ(retrier.next_delay(), std::nullopt);
  EXPECT_EQ(retrier.retries(), 0u);
  EXPECT_EQ(retrier.delayed(), 0u);
}

TEST_F(ReplicatedTest, DeadlineExpirySurfacesLastUnderlyingFault) {
  // A persistent outage on every replica exhausts the deadline-bounded
  // schedule; the receipt must carry the *underlying* fault, charged
  // backoff must not exceed the per-replica deadline.
  ReplicatedOptions options;
  options.retry = RetryPolicy::bounded(50, 10 * kMillisecond);
  ReplicatedStore store = make_store(options);
  local_.set_outage(true);
  remote_.set_outage(true);

  SimTime charged = 0;
  const StoreReceipt receipt =
      store.store_verbose(make_image(15), [&](SimTime t) { charged += t; });
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.last_error, StoreErrorKind::kUnreachable);
  EXPECT_GT(receipt.retries, 0u);
  EXPECT_LE(charged, 2 * 10 * kMillisecond);  // two replicas, one deadline each
}

TEST_F(ReplicatedTest, ZeroRetryStoreMakesExactlyOneAttempt) {
  ReplicatedStore store = make_store();  // default policy: no retries
  local_.inject_store_fault(StoreFault::kReject);
  remote_.inject_store_fault(StoreFault::kReject);
  const StoreReceipt receipt = store.store_verbose(make_image(16), nullptr);
  EXPECT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.retries, 0u);
  EXPECT_EQ(receipt.last_error, StoreErrorKind::kRejected);
  // The one-shot faults were consumed by the single attempts; the next
  // store succeeds — the pre-retry behaviour, unchanged.
  EXPECT_TRUE(store.store_verbose(make_image(17), nullptr).ok());
}

// --- Commit-pipeline determinism ---------------------------------------------
//
// The pipeline's contract: for ANY worker count (including the fully serial
// pre-pipeline path), a store produces bit-identical replica contents,
// identical manifests, and the identical sequence of sim-time charges.

CheckpointImage make_wide_image(std::uint64_t tag, std::size_t segments) {
  CheckpointImage image = make_image(tag);
  image.segments.clear();
  for (std::size_t s = 0; s < segments; ++s) {
    MemorySegmentImage seg;
    seg.vma = sim::Vma{sim::page_of(0x10000 + (s << 16)), 4, sim::kProtRW,
                       sim::VmaKind::kData, "seg" + std::to_string(s)};
    for (std::uint64_t p = 0; p < 4; ++p) {
      PageImage page;
      page.page = seg.vma.first_page + p;
      page.data.assign(sim::kPageSize,
                       static_cast<std::byte>((tag * 31 + s * 7 + p) & 0xFF));
      seg.pages.push_back(std::move(page));
    }
    image.segments.push_back(std::move(seg));
  }
  return image;
}

TEST(PipelineDeterminism, ShardedSerializeIsBitIdenticalForAnyWorkerCount) {
  const CheckpointImage image = make_wide_image(9, /*segments=*/13);
  const std::vector<std::byte> serial = image.serialize();
  EXPECT_EQ(serial.size(), image.serialized_size());

  util::ThreadPool one(1), eight(8);
  EXPECT_EQ(image.serialize(one), serial);
  EXPECT_EQ(image.serialize(eight), serial);
  // And the output still round-trips through the CRC-checked envelope.
  const CheckpointImage back = CheckpointImage::deserialize(image.serialize(eight));
  EXPECT_EQ(back.segments.size(), image.segments.size());
}

struct PipelineRun {
  std::vector<std::vector<std::byte>> replica_blobs;  // flattened, replica order
  std::vector<ImageId> manifest;
  std::vector<SimTime> charges;
  std::uint64_t retries = 0;

  friend bool operator==(const PipelineRun&, const PipelineRun&) = default;
};

/// Drive an identical faulted workload through a 3-replica store configured
/// with `options`, recording everything observable.
PipelineRun drive_pipeline(ReplicatedOptions options) {
  sim::CostModel costs;
  LocalDiskBackend local{costs};
  RemoteBackend remote_a{costs};
  RemoteBackend remote_b{costs};
  options.retry = RetryPolicy::bounded(4, 80 * kMillisecond);
  options.retry.jitter_seed = 0x7777;
  ReplicatedStore store({&local, &remote_a, &remote_b}, options);

  PipelineRun run;
  const ChargeFn charge = [&run](SimTime t) { run.charges.push_back(t); };
  for (std::uint64_t i = 0; i < 6; ++i) {
    // A different replica misbehaves each round; retries must heal it.
    BlobStoreBackend& victim = store.replica(i % 3);
    if (i % 2 == 0) victim.inject_store_fault(StoreFault::kTornWrite);
    const StoreReceipt receipt = store.store_verbose(make_wide_image(i, 5), charge);
    run.retries += receipt.retries;
    EXPECT_TRUE(receipt.ok()) << "round " << i;
  }
  store.replica(1).corrupt_blob(store.replica(1).newest_id(), 10, 64);
  store.scrub(charge);

  run.manifest = store.list();
  for (std::size_t r = 0; r < store.replica_count(); ++r) {
    for (ImageId id : store.replica(r).list()) {
      auto blob = store.replica(r).read_blob(id, nullptr);
      run.replica_blobs.push_back(blob.value_or(std::vector<std::byte>{}));
    }
  }
  return run;
}

TEST(PipelineDeterminism, OneWorkerAndEightWorkersProduceIdenticalStateAndCharges) {
  util::ThreadPool one(1), four(4), eight(8);

  ReplicatedOptions serial;
  serial.serial_commit = true;
  const PipelineRun baseline = drive_pipeline(serial);

  ReplicatedOptions pooled1;
  pooled1.pool = &one;
  EXPECT_EQ(drive_pipeline(pooled1), baseline);

  ReplicatedOptions pooled4;
  pooled4.pool = &four;
  EXPECT_EQ(drive_pipeline(pooled4), baseline);

  ReplicatedOptions pooled8;
  pooled8.pool = &eight;
  EXPECT_EQ(drive_pipeline(pooled8), baseline);
}

TEST(PipelineDeterminism, DuplicateReplicaSlotsFallBackToTheSequentialLoop) {
  // Two slots sharing one backend would race under the parallel fan-out;
  // the store must detect this and stage sequentially (and still work).
  sim::CostModel costs;
  RemoteBackend shared_backend{costs};
  util::ThreadPool eight(8);
  ReplicatedOptions options;
  options.pool = &eight;
  ReplicatedStore store({&shared_backend, &shared_backend}, options);
  const StoreReceipt receipt = store.store_verbose(make_wide_image(3, 4), nullptr);
  EXPECT_TRUE(receipt.ok());
  EXPECT_EQ(receipt.committed_replicas, 2u);
  EXPECT_TRUE(store.load(receipt.id, nullptr).has_value());
}

}  // namespace
}  // namespace ckpt::storage
