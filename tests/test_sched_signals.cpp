#include <gtest/gtest.h>

#include "core/systemlevel.hpp"
#include "sim/userapi.hpp"
#include "test_common.hpp"

namespace ckpt::sim {
namespace {

using ckpt::test::SimTest;
using ckpt::test::run_steps;

class SchedTest : public SimTest {};

TEST_F(SchedTest, NewProcessDoesNotStarveOldOnes) {
  SimKernel kernel;
  const Pid old_pid = kernel.spawn(CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 50 * kMillisecond);
  const std::uint64_t before = kernel.process(old_pid).stats.guest_iterations;
  // A newcomer joins late; fairness must keep both progressing.
  const Pid new_pid = kernel.spawn(CounterGuest::kTypeName);
  kernel.run_until(kernel.now() + 20 * kMillisecond);
  EXPECT_GT(kernel.process(old_pid).stats.guest_iterations, before);
  EXPECT_GT(kernel.process(new_pid).stats.guest_iterations, 0u);
}

TEST_F(SchedTest, WokenSleeperDoesNotMonopolise) {
  SimKernel kernel;
  const Pid runner = kernel.spawn(CounterGuest::kTypeName);
  const Pid sleeper = kernel.spawn(CounterGuest::kTypeName);
  {
    UserApi api(kernel, kernel.process(sleeper));
    api.sys_sleep(40 * kMillisecond);
  }
  kernel.run_until(kernel.now() + 50 * kMillisecond);  // sleeper wakes mid-way
  const std::uint64_t runner_before = kernel.process(runner).stats.guest_iterations;
  kernel.run_until(kernel.now() + 10 * kMillisecond);
  // The runner keeps making progress right after the wake-up.
  EXPECT_GT(kernel.process(runner).stats.guest_iterations, runner_before);
}

TEST_F(SchedTest, FifoPriorityOrdering) {
  SimKernel kernel;
  std::vector<int> order;
  const Pid low = kernel.spawn_kernel_thread(
      "low",
      [&order](SimKernel&) {
        order.push_back(1);
        return KStepResult::kSleep;
      },
      SchedParams{SchedClass::kFifo, 10, 0, 0});
  const Pid high = kernel.spawn_kernel_thread(
      "high",
      [&order](SimKernel&) {
        order.push_back(2);
        return KStepResult::kSleep;
      },
      SchedParams{SchedClass::kFifo, 90, 0, 0});
  kernel.wake(low);
  kernel.wake(high);
  kernel.run_round();
  kernel.run_round();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // higher rt_priority first
  EXPECT_EQ(order[1], 1);
}

TEST_F(SchedTest, KernelThreadExitIsClean) {
  SimKernel kernel;
  const Pid kt = kernel.spawn_kernel_thread(
      "oneshot", [](SimKernel&) { return KStepResult::kExit; });
  kernel.wake(kt);
  kernel.run_round();
  const Process* proc = kernel.find_process(kt);
  ASSERT_NE(proc, nullptr);
  EXPECT_FALSE(proc->alive());
}

TEST_F(SchedTest, RunWhileStopsAtDeadline) {
  SimKernel kernel;
  kernel.spawn(CounterGuest::kTypeName);
  const SimTime deadline = kernel.now() + 5 * kMillisecond;
  const bool fired = kernel.run_while([] { return true; }, deadline);
  EXPECT_FALSE(fired);
  EXPECT_GE(kernel.now(), deadline);
}

TEST_F(SchedTest, IdleMachineSkipsToTimers) {
  SimKernel kernel;  // no tasks at all
  bool fired = false;
  kernel.add_timer(kernel.now() + 500 * kMillisecond, [&](SimKernel&) { fired = true; });
  kernel.run_until(kernel.now() + 1 * kSecond);
  EXPECT_TRUE(fired);
}

class SignalSemanticsTest : public SimTest {};

TEST_F(SignalSemanticsTest, MaskBlocksUntilUnmasked) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  int taken = 0;
  proc.signals.disposition[kSigUsr1] = SignalDisposition::kHandler;
  proc.library_handlers[kSigUsr1] = [&taken](SimKernel&, Process&, Signal) { ++taken; };
  proc.signals.mask = SignalState::bit(kSigUsr1);
  kernel.send_signal(pid, kSigUsr1);
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_EQ(taken, 0);  // masked: pending, undelivered
  proc.signals.mask = 0;
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_EQ(taken, 1);
}

TEST_F(SignalSemanticsTest, StandardSignalsDoNotQueue) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  int taken = 0;
  proc.signals.disposition[kSigUsr1] = SignalDisposition::kHandler;
  proc.library_handlers[kSigUsr1] = [&taken](SimKernel&, Process&, Signal) { ++taken; };
  kernel.stop_process(proc);  // hold delivery
  kernel.send_signal(pid, kSigUsr1);
  kernel.send_signal(pid, kSigUsr1);
  kernel.send_signal(pid, kSigUsr1);
  kernel.send_signal(pid, kSigCont);
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_EQ(taken, 1);  // coalesced into one pending bit
}

TEST_F(SignalSemanticsTest, SigKillCannotBeBlockedOrHandled) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  proc.signals.mask = ~0ULL;
  proc.signals.disposition[kSigKill] = SignalDisposition::kHandler;  // futile
  kernel.send_signal(pid, kSigKill);
  EXPECT_FALSE(proc.alive());
}

TEST_F(SignalSemanticsTest, SigchldRaisedOnChildExit) {
  SimKernel kernel;
  const Pid parent = kernel.spawn(CounterGuest::kTypeName);
  run_steps(kernel, parent, 1);
  const Pid child = kernel.sys_fork(kernel.process(parent));
  kernel.terminate(kernel.process(child), 0);
  EXPECT_TRUE(kernel.process(parent).signals.is_pending(kSigChld));
  // Default action for SIGCHLD is ignore: the parent survives delivery.
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_TRUE(kernel.process(parent).alive());
}

TEST_F(SignalSemanticsTest, TermSignalWithHandlerSurvives) {
  SimKernel kernel;
  const Pid pid = kernel.spawn(CounterGuest::kTypeName);
  Process& proc = kernel.process(pid);
  int caught = 0;
  proc.signals.disposition[kSigTerm] = SignalDisposition::kHandler;
  proc.library_handlers[kSigTerm] = [&caught](SimKernel&, Process&, Signal) { ++caught; };
  kernel.send_signal(pid, kSigTerm);
  kernel.run_until(kernel.now() + 5 * kMillisecond);
  EXPECT_EQ(caught, 1);
  EXPECT_TRUE(proc.alive());
}

class EngineChainTest : public SimTest {
 protected:
  SimKernel kernel_;
  storage::LocalDiskBackend backend_{CostModel{}};
};

TEST_F(EngineChainTest, HistoryAccumulatesAcrossProcesses) {
  core::SyscallEngine engine("e", &backend_, core::EngineOptions{}, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const Pid a = kernel_.spawn(CounterGuest::kTypeName);
  const Pid b = kernel_.spawn(CounterGuest::kTypeName);
  run_steps(kernel_, a, 2);
  run_steps(kernel_, b, 2);
  ASSERT_TRUE(engine.request_checkpoint(kernel_, a).ok);
  ASSERT_TRUE(engine.request_checkpoint(kernel_, b).ok);
  ASSERT_TRUE(engine.request_checkpoint(kernel_, a).ok);
  EXPECT_EQ(engine.history().size(), 3u);
  EXPECT_EQ(engine.checkpoints_taken(a), 2u);
  EXPECT_EQ(engine.checkpoints_taken(b), 1u);
  // Each pid restarts independently.
  kernel_.terminate(kernel_.process(a), 1);
  kernel_.reap(a);
  EXPECT_TRUE(engine.restart(kernel_, a).ok);
  EXPECT_FALSE(engine.restart(kernel_, 999).ok);
}

TEST_F(EngineChainTest, RestartAfterBackendLossFailsGracefully) {
  core::SyscallEngine engine("e", &backend_, core::EngineOptions{}, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const Pid pid = kernel_.spawn(CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  ASSERT_TRUE(engine.request_checkpoint(kernel_, pid).ok);
  backend_.fail_node();
  const auto result = engine.restart(kernel_, pid);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unreadable"), std::string::npos);
}

TEST_F(EngineChainTest, CheckpointWhileBackendDownReportsError) {
  core::SyscallEngine engine("e", &backend_, core::EngineOptions{}, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const Pid pid = kernel_.spawn(CounterGuest::kTypeName);
  run_steps(kernel_, pid, 2);
  backend_.fail_node();
  const auto result = engine.request_checkpoint(kernel_, pid);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(kernel_.process(pid).alive());  // failure is contained
}

TEST_F(EngineChainTest, DetachStopsTracking) {
  core::EngineOptions options;
  options.incremental = true;
  options.tracker_factory = [] { return std::make_unique<core::KernelWpTracker>(); };
  core::SyscallEngine engine("e", &backend_, options, kernel_,
                             core::SyscallEngine::TargetMode::kByPid, nullptr);
  const Pid pid = kernel_.spawn(CounterGuest::kTypeName);
  ASSERT_TRUE(engine.attach(kernel_, pid));
  run_steps(kernel_, pid, 2);
  ASSERT_TRUE(engine.request_checkpoint(kernel_, pid).ok);
  engine.detach(kernel_, pid);
  // Tracking hooks removed: writes proceed without faults.
  const auto faults = kernel_.process(pid).stats.page_faults;
  run_steps(kernel_, pid, kernel_.process(pid).stats.guest_iterations + 5);
  EXPECT_EQ(kernel_.process(pid).stats.page_faults, faults);
}

}  // namespace
}  // namespace ckpt::sim
