#!/usr/bin/env bash
# CI entry point.
#
# 1. default build: full unit suite plus the fault-injection torture soak
#    (ctest label `torture`, see tests/test_torture.cpp) and the replicated
#    stable-storage soak (label `torture-storage`,
#    tests/test_torture_storage.cpp).
# 2. asan-ubsan build (CMakePresets.json / CKPT_SANITIZE): the same suite
#    and both torture soaks under AddressSanitizer + UBSanitizer.
# 3. data-loss gate: the storage-survivability bench replays the PR 1 fault
#    schedule against 1/2/3-way replication; any recovery that lost state
#    while an intact replica of a committed image existed fails the build.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build --preset default -j"${JOBS}"
ctest --preset default -j"${JOBS}"
ctest --preset torture
ctest --preset torture-storage

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"${JOBS}"
ctest --preset asan-ubsan -j"${JOBS}"
ctest --preset torture-asan-ubsan
ctest --preset torture-storage-asan-ubsan

# Data-loss gate (see RecoveryReport::data_loss_with_intact_replica and the
# harness's unexpected_failures/scrub_failures counters).
SURVIVABILITY="$(./build/bench/claim_storage_survivability)"
echo "${SURVIVABILITY}"
if ! grep -q "^data-loss-with-intact-replica events: 0$" <<<"${SURVIVABILITY}"; then
  echo "CI gate: a recovery lost state although an intact replica existed" >&2
  exit 1
fi
if grep -q "DATA LOSS WITH INTACT REPLICA" <<<"${SURVIVABILITY}"; then
  echo "CI gate: a RecoveryReport flagged data loss with an intact replica" >&2
  exit 1
fi
