#!/usr/bin/env bash
# CI entry point.
#
# 1. default build: full unit suite plus the fault-injection torture soak
#    (ctest label `torture`, see tests/test_torture.cpp).
# 2. asan-ubsan build (CMakePresets.json / CKPT_SANITIZE): the same suite
#    under AddressSanitizer + UndefinedBehaviorSanitizer.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build --preset default -j"${JOBS}"
ctest --preset default -j"${JOBS}"
ctest --preset torture

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"${JOBS}"
ctest --preset asan-ubsan -j"${JOBS}"
