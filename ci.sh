#!/usr/bin/env bash
# CI entry point.
#
# 1. default build: full unit suite plus the fault-injection torture soak
#    (ctest label `torture`, see tests/test_torture.cpp) and the replicated
#    stable-storage soak (label `torture-storage`,
#    tests/test_torture_storage.cpp).
# 2. asan-ubsan build (CMakePresets.json / CKPT_SANITIZE): the same suite
#    and both torture soaks under AddressSanitizer + UBSanitizer.
# 3. data-loss gate: the storage-survivability bench replays the PR 1 fault
#    schedule against 1/2/3-way replication; any recovery that lost state
#    while an intact replica of a committed image existed fails the build.
# 4. pipeline gate: bench_pipeline measures the parallel commit pipeline
#    against the legacy serial commit loop and archives BENCH_pipeline.json.
#    Hard-fails if 1-worker and 8-worker commits are not bit-identical, or
#    if the large/3-way/4-worker speedup regresses below 1.3x (the headline
#    target is >= 2x, reported in the JSON).  CKPT_WORKERS sets the shared
#    pool width for the test suites (default: hardware concurrency, clamped).
# 5. observability gate: ckpt_report exports an observed soak's Chrome trace
#    at commit-pipeline widths 1 and 8; the files must be byte-identical
#    (the trace is part of the determinism contract) and strictly
#    well-formed (the binary lints its own exports).  bench_obs then
#    measures enabled-vs-disabled tracing on the commit loop and archives
#    BENCH_obs.json; enabled tracing above 2% overhead fails the build.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build --preset default -j"${JOBS}"
ctest --preset default -j"${JOBS}"
ctest --preset torture
ctest --preset torture-storage

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"${JOBS}"
ctest --preset asan-ubsan -j"${JOBS}"
ctest --preset torture-asan-ubsan
ctest --preset torture-storage-asan-ubsan

# Data-loss gate (see RecoveryReport::data_loss_with_intact_replica and the
# harness's unexpected_failures/scrub_failures counters).
SURVIVABILITY="$(./build/bench/claim_storage_survivability)"
echo "${SURVIVABILITY}"
if ! grep -q "^data-loss-with-intact-replica events: 0$" <<<"${SURVIVABILITY}"; then
  echo "CI gate: a recovery lost state although an intact replica existed" >&2
  exit 1
fi
if grep -q "DATA LOSS WITH INTACT REPLICA" <<<"${SURVIVABILITY}"; then
  echo "CI gate: a RecoveryReport flagged data loss with an intact replica" >&2
  exit 1
fi

# Commit-pipeline gate: determinism is a hard invariant; throughput gets a
# loose regression floor (1.3x) so a noisy shared runner cannot flake the
# build, while the JSON archives the actual measured speedup (target 2x).
./build/bench/bench_pipeline BENCH_pipeline.json
if ! grep -q '"identical_1v8": true' BENCH_pipeline.json; then
  echo "CI gate: 1-worker and 8-worker commits are not bit-identical" >&2
  exit 1
fi
SPEEDUP="$(sed -n 's/.*"speedup_large_3way_4workers": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)"
if ! awk -v s="${SPEEDUP}" 'BEGIN { exit !(s >= 1.3) }'; then
  echo "CI gate: pipeline speedup ${SPEEDUP}x regressed below the 1.3x floor" >&2
  exit 1
fi
echo "pipeline gate: speedup ${SPEEDUP}x (floor 1.3x, target 2x), determinism ok"

# Observability gate: worker-count trace invariance + well-formedness.
# ckpt_report exits non-zero when its own strict JSON lint rejects either
# the trace or the metrics snapshot, so a plain run is the schema check.
./build/examples/ckpt_report trace_w1.json 1 >/dev/null
./build/examples/ckpt_report trace_w8.json 8 >/dev/null
if ! cmp -s trace_w1.json trace_w8.json; then
  echo "CI gate: observed trace differs between 1 and 8 commit workers" >&2
  exit 1
fi
rm -f trace_w8.json

# Enabled-tracing overhead on the commit loop (< 2%, with a little slack for
# shared-runner noise baked into the bench's A/B/A interleave).
./build/bench/bench_obs BENCH_obs.json
if ! grep -q '"holds": true' BENCH_obs.json; then
  echo "CI gate: enabled tracing exceeded the 2% commit-overhead budget" >&2
  exit 1
fi
OBS_OVERHEAD="$(sed -n 's/.*"overhead_pct": \([-0-9.]*\).*/\1/p' BENCH_obs.json)"
echo "observability gate: trace worker-invariant, overhead ${OBS_OVERHEAD}% (budget 2%)"
