#!/usr/bin/env bash
# CI entry point.
#
# 1. default build: full unit suite plus the fault-injection torture soak
#    (ctest label `torture`, see tests/test_torture.cpp) and the replicated
#    stable-storage soak (label `torture-storage`,
#    tests/test_torture_storage.cpp).
# 2. asan-ubsan build (CMakePresets.json / CKPT_SANITIZE): the same suite
#    and both torture soaks under AddressSanitizer + UBSanitizer.
# 3. data-loss gate: the storage-survivability bench replays the PR 1 fault
#    schedule against 1/2/3-way replication; any recovery that lost state
#    while an intact replica of a committed image existed fails the build.
# 4. pipeline gate: bench_pipeline measures the parallel commit pipeline
#    against the legacy serial commit loop and archives BENCH_pipeline.json.
#    Hard-fails if 1-worker and 8-worker commits are not bit-identical, or
#    if the large/3-way/4-worker speedup regresses below 1.3x (the headline
#    target is >= 2x, reported in the JSON).  CKPT_WORKERS sets the shared
#    pool width for the test suites (default: hardware concurrency, clamped).
# 5. observability gate: ckpt_report exports an observed soak's Chrome trace
#    at commit-pipeline widths 1 and 8; the files must be byte-identical
#    (the trace is part of the determinism contract) and strictly
#    well-formed (the binary lints its own exports).  bench_obs then
#    measures enabled-vs-disabled tracing on the commit loop and archives
#    BENCH_obs.json; enabled tracing above 2% overhead fails the build.
# 6. dedup gate: bench_dedup stores the same dirty-rate image sweep through
#    the flat blob path and the content-addressed DedupStore and archives
#    BENCH_dedup.json.  Hard-fails if durable bytes per commit at a 10%
#    dirty rate exceed 0.3x the flat path, if any round-trip is not
#    bit-identical, or if replicated dedup replica contents differ between
#    1 and 8 commit workers.
# 7. journal gate: the JournalCrashReplay harness (every record boundary +
#    fuzzed intra-record corruption) must be green under the asan-ubsan
#    build, and bench_journal must show append-commit initiation >= 1.5x
#    faster than the two-phase publish at 4 concurrent writers with
#    1-vs-8-worker-identical log/home contents (BENCH_journal.json).
# 8. fleet gate: the 500+-node autonomic fleet soak (label `fleet`,
#    tests/test_fleet_soak.cpp — combined exponential+Weibull fail-stop,
#    detector false-suspicions, storage faults) must be green under both
#    builds including asan-ubsan, with zero data_loss_with_intact_replica
#    and 1-vs-8-worker byte-identical fleet reports/metrics/traces.
#    bench_fleet then sweeps 32..512 active nodes and archives
#    BENCH_fleet.json; commit efficiency < 0.9 at 512 nodes, < 4x commit
#    scaling 32->512, any data loss, or a 1-vs-8 digest mismatch fails the
#    build.
# 9. pause gate: the streaming identity/leak/fault tests run under
#    asan-ubsan, then bench_pause_time sweeps image size x dirty rate and
#    archives BENCH_pause.json.  A guest-visible pause reduction below 10x
#    at the largest image, or any 1-vs-8-worker difference in the streamed
#    replica bytes, fails the build.
# 10. mpi gate: the uncoordinated message-logging suite (sender log,
#    recovery-line resolver, restart-only-the-failed-rank, crash-point
#    replay) reruns under asan-ubsan, then bench_mpi sweeps rank count x
#    halo size and archives BENCH_mpi.json.  A coordinated drain that the
#    flat per-rank commit fails to beat at 128 ranks, any lost message,
#    any 1-vs-8-worker divergence, or a covered rollback deeper than one
#    checkpoint fails the build.
# 11. docs lint: ARCHITECTURE.md and DESIGN.md must mention every src/
#    module, DESIGN.md section numbering must be contiguous, and every
#    intra-repo markdown link in the top-level docs must resolve — both
#    the path and, for links with a #fragment, a matching heading anchor
#    in the target document.
#
# Every BENCH_*.json artifact a gate writes (pipeline, obs, dedup, journal,
# fleet, pause, mpi) lands at the repo root and is tracked in git, so a
# checkout always carries the numbers behind EXPERIMENTS.md and a
# regression shows up as a diff, not a vanished file.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build --preset default -j"${JOBS}"
ctest --preset default -j"${JOBS}"
ctest --preset torture
ctest --preset torture-storage
ctest --preset fleet

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"${JOBS}"
ctest --preset asan-ubsan -j"${JOBS}"
ctest --preset torture-asan-ubsan
ctest --preset torture-storage-asan-ubsan
ctest --preset fleet-asan-ubsan

# Data-loss gate (see RecoveryReport::data_loss_with_intact_replica and the
# harness's unexpected_failures/scrub_failures counters).
SURVIVABILITY="$(./build/bench/claim_storage_survivability)"
echo "${SURVIVABILITY}"
if ! grep -q "^data-loss-with-intact-replica events: 0$" <<<"${SURVIVABILITY}"; then
  echo "CI gate: a recovery lost state although an intact replica existed" >&2
  exit 1
fi
if grep -q "DATA LOSS WITH INTACT REPLICA" <<<"${SURVIVABILITY}"; then
  echo "CI gate: a RecoveryReport flagged data loss with an intact replica" >&2
  exit 1
fi

# Commit-pipeline gate: determinism is a hard invariant; throughput gets a
# loose regression floor (1.3x) so a noisy shared runner cannot flake the
# build, while the JSON archives the actual measured speedup (target 2x).
./build/bench/bench_pipeline BENCH_pipeline.json
if ! grep -q '"identical_1v8": true' BENCH_pipeline.json; then
  echo "CI gate: 1-worker and 8-worker commits are not bit-identical" >&2
  exit 1
fi
SPEEDUP="$(sed -n 's/.*"speedup_large_3way_4workers": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)"
if ! awk -v s="${SPEEDUP}" 'BEGIN { exit !(s >= 1.3) }'; then
  echo "CI gate: pipeline speedup ${SPEEDUP}x regressed below the 1.3x floor" >&2
  exit 1
fi
echo "pipeline gate: speedup ${SPEEDUP}x (floor 1.3x, target 2x), determinism ok"

# Observability gate: worker-count trace invariance + well-formedness.
# ckpt_report exits non-zero when its own strict JSON lint rejects either
# the trace or the metrics snapshot, so a plain run is the schema check.
./build/examples/ckpt_report trace_w1.json 1 >/dev/null
./build/examples/ckpt_report trace_w8.json 8 >/dev/null
if ! cmp -s trace_w1.json trace_w8.json; then
  echo "CI gate: observed trace differs between 1 and 8 commit workers" >&2
  exit 1
fi
rm -f trace_w8.json

# Enabled-tracing overhead on the commit loop (< 2%, with a little slack for
# shared-runner noise baked into the bench's A/B/A interleave).
./build/bench/bench_obs BENCH_obs.json
if ! grep -q '"holds": true' BENCH_obs.json; then
  echo "CI gate: enabled tracing exceeded the 2% commit-overhead budget" >&2
  exit 1
fi
OBS_OVERHEAD="$(sed -n 's/.*"overhead_pct": \([-0-9.]*\).*/\1/p' BENCH_obs.json)"
echo "observability gate: trace worker-invariant, overhead ${OBS_OVERHEAD}% (budget 2%)"

# Dedup gate: durable volume must track the dirty rate, and the
# content-addressed store must never bend the correctness invariants to get
# there (exact round-trips, worker-count-invariant replicas).
./build/bench/bench_dedup BENCH_dedup.json
if ! grep -q '"holds": true' BENCH_dedup.json; then
  echo "CI gate: dedup store failed its volume/correctness gate" >&2
  exit 1
fi
DEDUP_RATIO="$(sed -n 's/.*"ratio_10pct_dirty": \([0-9.]*\).*/\1/p' BENCH_dedup.json)"
echo "dedup gate: ${DEDUP_RATIO}x durable bytes at 10% dirty (ceiling 0.3x), round-trips exact"

# Journal gate: the crash-point replay harness must hold under the
# sanitizers (torn-tail recovery is exactly where latent UB would hide), and
# append-commit must actually buy its keep over the two-phase publish path.
ctest --preset asan-ubsan -R 'JournalCrashReplay' --output-on-failure
./build/bench/bench_journal BENCH_journal.json
if ! grep -q '"holds": true' BENCH_journal.json; then
  echo "CI gate: journal append-commit failed its speedup/determinism gate" >&2
  exit 1
fi
JOURNAL_SPEEDUP="$(sed -n 's/.*"speedup_append_4writers": \([0-9.]*\).*/\1/p' BENCH_journal.json)"
if ! awk -v s="${JOURNAL_SPEEDUP}" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "CI gate: append-commit speedup ${JOURNAL_SPEEDUP}x fell below the 1.5x floor" >&2
  exit 1
fi
echo "journal gate: crash replay green under asan-ubsan, append-commit ${JOURNAL_SPEEDUP}x (floor 1.5x)"

# Fleet gate: the soak itself ran above under both builds (ctest label
# `fleet`); bench_fleet adds the node-count sweep with its efficiency,
# scaling, data-loss and worker-identity floors.
./build/bench/bench_fleet BENCH_fleet.json
if ! grep -q '"holds": true' BENCH_fleet.json; then
  echo "CI gate: fleet sweep failed its efficiency/scaling/data-loss gate" >&2
  exit 1
fi
if ! grep -q '"data_loss_with_intact_replica": 0' BENCH_fleet.json; then
  echo "CI gate: fleet sweep lost state although an intact replica existed" >&2
  exit 1
fi
if ! grep -q '"identical_1v8": true' BENCH_fleet.json; then
  echo "CI gate: fleet report differs between 1 and 8 workers" >&2
  exit 1
fi
FLEET_EFF="$(sed -n 's/.*"efficiency_at_512": \([0-9.]*\).*/\1/p' BENCH_fleet.json)"
FLEET_SCALE="$(sed -n 's/.*"scaling_32_to_512": \([0-9.]*\).*/\1/p' BENCH_fleet.json)"
echo "fleet gate: soak green, efficiency ${FLEET_EFF} (floor 0.9), scaling ${FLEET_SCALE}x (floor 4x), determinism ok"

# Pause gate: the streaming commit path's identity/leak/mid-stream-fault
# tests rerun under the sanitizers (the chunk pipeline and shadow reaping
# are exactly where lifetime bugs would hide), then bench_pause_time sweeps
# image size x dirty rate.  The fork-snapshot pause must stay >= 10x below
# stop-the-world at the largest image, with 1-vs-8-worker identical bytes.
ctest --preset asan-ubsan -R 'Streaming' --output-on-failure
./build/bench/bench_pause_time BENCH_pause.json
if ! grep -q '"holds": true' BENCH_pause.json; then
  echo "CI gate: streaming commit failed its pause-reduction/identity gate" >&2
  exit 1
fi
if ! grep -q '"identical_1v8": true' BENCH_pause.json; then
  echo "CI gate: streamed replica bytes differ between 1 and 8 workers" >&2
  exit 1
fi
PAUSE_REDUCTION="$(sed -n 's/.*"pause_reduction_large": \([0-9.]*\).*/\1/p' BENCH_pause.json)"
if ! awk -v r="${PAUSE_REDUCTION}" 'BEGIN { exit !(r >= 10.0) }'; then
  echo "CI gate: pause reduction ${PAUSE_REDUCTION}x fell below the 10x floor" >&2
  exit 1
fi
echo "pause gate: guest-visible pause cut ${PAUSE_REDUCTION}x (floor 10x), streamed bytes worker-invariant"

# MPI gate: the message-log/recovery-line/replay suite reruns under the
# sanitizers (rewind + replay juggle raw payload buffers — exactly where
# lifetime bugs would hide), then bench_mpi sweeps rank count x halo size
# with the crash-point replay and rollback-depth scenarios.
ctest --preset asan-ubsan -R 'Uncoordinated|MessageLog|RollbackResolver' --output-on-failure
./build/bench/bench_mpi BENCH_mpi.json
if ! grep -q '"holds": true' BENCH_mpi.json; then
  echo "CI gate: uncoordinated MPI failed its latency/lossless/depth gate" >&2
  exit 1
fi
if ! grep -q '"lost_messages": 0' BENCH_mpi.json; then
  echo "CI gate: a receiver observed a sequence gap (lost message)" >&2
  exit 1
fi
if ! grep -q '"identical_1v8": true' BENCH_mpi.json; then
  echo "CI gate: mpi replay outcome differs between 1 and 8 workers" >&2
  exit 1
fi
MPI_DEPTH="$(sed -n 's/.*"rollback_depth_double_journal": \([0-9]*\).*/\1/p' BENCH_mpi.json)"
if [ "${MPI_DEPTH}" != "1" ]; then
  echo "CI gate: journal-covered double failure rolled back ${MPI_DEPTH} checkpoints (must be 1)" >&2
  exit 1
fi
MPI_MEAN="$(sed -n 's/.*"uncoordinated_commit_mean_ms": \([0-9.]*\).*/\1/p' BENCH_mpi.json | tail -1)"
echo "mpi gate: commit mean ${MPI_MEAN} ms flat at 128 ranks, zero lost messages, covered rollback depth 1"

# Docs lint.
for module in src/*/; do
  name="$(basename "${module}")"
  for doc in ARCHITECTURE.md DESIGN.md; do
    if ! grep -q "src/${name}" "${doc}"; then
      echo "docs lint: ${doc} does not mention module src/${name}" >&2
      exit 1
    fi
  done
done
expected=1
while read -r section; do
  if [ "${section}" -ne "${expected}" ]; then
    echo "docs lint: DESIGN.md section ${section} breaks contiguous numbering (expected ${expected})" >&2
    exit 1
  fi
  expected=$((expected + 1))
done < <(sed -n 's/^## \([0-9][0-9]*\).*/\1/p' DESIGN.md)
# GitHub-style heading anchor: lowercase, drop everything but
# alphanumerics/spaces/hyphens, then spaces -> hyphens.
anchor_of() {
  printf '%s' "$1" | tr '[:upper:]' '[:lower:]' \
    | sed 's/[^a-z0-9 -]//g; s/ /-/g'
}
for doc in README.md ARCHITECTURE.md DESIGN.md EXPERIMENTS.md ROADMAP.md; do
  while read -r link; do
    case "${link}" in
      http://*|https://*|mailto:*) continue ;;
    esac
    target="${link%%#*}"
    fragment=""
    case "${link}" in
      *'#'*) fragment="${link#*#}" ;;
    esac
    if [ -n "${target}" ] && [ ! -e "${target}" ]; then
      echo "docs lint: ${doc} links to missing path '${target}'" >&2
      exit 1
    fi
    # A #fragment must name a real heading anchor in the target document
    # (the linking document itself when the path part is empty).
    if [ -n "${fragment}" ]; then
      anchor_target="${target:-${doc}}"
      case "${anchor_target}" in
        *.md)
          found=0
          while read -r heading; do
            if [ "$(anchor_of "${heading}")" = "${fragment}" ]; then
              found=1
              break
            fi
          done < <(sed -n 's/^#\{1,6\} //p' "${anchor_target}")
          if [ "${found}" -ne 1 ]; then
            echo "docs lint: ${doc} links to '#${fragment}' but ${anchor_target} has no such heading" >&2
            exit 1
          fi
          ;;
      esac
    fi
  done < <(grep -o '](\([^)]*\))' "${doc}" | sed 's/^](\(.*\))$/\1/')
done
echo "docs lint: module maps complete, section numbering contiguous, links and anchors resolve"
