// Live migration with ZAP-style pods: move a process holding "persistent"
// kernel state (a bound port, its pid) to another machine whose namespace
// conflicts — exactly the case §3/§4.1 say naive migration cannot handle.
//
// Build & run:  ./build/examples/live_migration
#include <cstdio>

#include "core/migrate.hpp"
#include "util/table.hpp"
#include "core/pod.hpp"
#include "sim/guests.hpp"
#include "sim/userapi.hpp"

using namespace ckpt;

int main() {
  sim::register_standard_guests();

  sim::SimKernel source(1, sim::CostModel{}, 1);
  sim::SimKernel destination(1, sim::CostModel{}, 2);
  source.hostname = "alpha";
  destination.hostname = "beta";

  // A service with a bound port on the source machine.
  core::PodManager pods;
  core::Pod& pod = pods.create_pod("webpod");
  const sim::Pid service = source.spawn(sim::CounterGuest::kTypeName);
  pods.adopt(source, service, pod.id);
  {
    sim::UserApi api(source, source.process(service));
    const sim::Fd sock = api.sys_socket();
    api.sys_bind(sock, 8080);
  }
  source.run_until(source.now() + 20 * kMillisecond);
  std::printf("service running on %s: pid %d, port 8080, count %llu\n",
              source.hostname.c_str(), service,
              static_cast<unsigned long long>(sim::CounterGuest::read_counter(
                  source, source.process(service))));

  // The destination is hostile: the pid and the port are both taken.
  while (!destination.pid_in_use(service)) {
    destination.spawn(sim::CounterGuest::kTypeName);
  }
  destination.bind_port(8080, destination.live_pids().front());
  std::printf("%s already uses pid %d and port 8080\n", destination.hostname.c_str(),
              service);

  // Naive migration fails...
  {
    core::MigrationOptions naive;
    naive.preserve_pid = true;
    const auto result = core::migrate_process(source, destination, service, naive);
    std::printf("naive migration: %s\n",
                result.ok ? "succeeded (unexpected!)" : ("refused -- " + result.error).c_str());
  }

  // ...pod migration re-homes the virtual identity.
  core::MigrationOptions zap;
  zap.pods = &pods;
  zap.pod = pod.id;
  const auto result = core::migrate_process(source, destination, service, zap);
  if (!result.ok) {
    std::printf("pod migration failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("pod migration moved %s bytes in %.3f ms downtime\n",
              util::format_bytes(result.bytes_transferred).c_str(),
              to_millis(result.downtime));
  for (const auto& warning : result.warnings) std::printf("  note: %s\n", warning.c_str());

  destination.run_until(destination.now() + 20 * kMillisecond);
  const sim::Pid real = result.new_pid;
  std::printf("service now on %s: real pid %d, virtual pid %d, virtual port 8080 -> "
              "real port %u, count %llu (still counting)\n",
              destination.hostname.c_str(), real, service, pod.vport_to_real[8080],
              static_cast<unsigned long long>(sim::CounterGuest::read_counter(
                  destination, destination.process(real))));
  return 0;
}
