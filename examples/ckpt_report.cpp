// ckpt_report: run an observed crash/restart soak and render its
// observability artifacts — a phase-breakdown table from the trace, the
// metrics snapshot, a Chrome trace-event JSON file you can drop into
// Perfetto / about:tracing, and the fleet-layer artifacts from a small
// tortured fleet: the telemetry rollup, the useful/checkpoint/rework
// overhead ledger, and a journal-recovered post-mortem for a dead node.
//
// Build & run:  ./build/examples/ckpt_report [trace.json] [workers]
//
// The trace path defaults to ./ckpt_trace.json; `workers` pins the commit
// pipeline width (default 0 = shared pool).  The exported trace is part of
// the determinism contract — the CI gate runs this binary at workers=1 and
// workers=8 and requires byte-identical files — so the binary exits
// non-zero if either export fails the strict JSON lint.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/fleet.hpp"
#include "inject/torture.hpp"
#include "obs/json.hpp"
#include "obs/observer.hpp"
#include "sim/guests.hpp"
#include "util/table.hpp"

using namespace ckpt;

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "ckpt_trace.json";
  const std::uint32_t workers =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 0;
  sim::register_standard_guests();

  // --- an observed replicated soak -----------------------------------------
  obs::Observer observer;
  inject::TortureOptions options;
  options.seed = 0x0b5;
  options.cycles = 40;
  options.replicated_storage = true;
  options.replicas = 3;
  options.workers = workers;
  options.observer = &observer;

  inject::TortureHarness harness(options);
  const inject::TortureReport report = harness.run(inject::TortureTarget{"CRAK", nullptr});
  std::printf("%s\n\n", report.summary().c_str());

  // --- phase breakdown from the trace ---------------------------------------
  util::TextTable phases({"phase", "count", "total sim-time"});
  for (const auto& [name, stat] : observer.trace().phase_totals()) {
    phases.add_row({name, std::to_string(stat.count), util::format_time_ns(stat.total)});
  }
  std::fputs(phases.render().c_str(), stdout);
  std::printf("\n");

  // --- metrics snapshot ------------------------------------------------------
  const std::string metrics = observer.metrics().snapshot_json();
  std::printf("metrics snapshot:\n%s\n\n", metrics.c_str());

  // --- fleet observability: rollup, overhead ledger, post-mortem ------------
  cluster::FleetOptions fleet_options;
  fleet_options.active_nodes = 16;
  fleet_options.spare_nodes = 4;
  fleet_options.shards = 4;
  fleet_options.seed = 0x0b5;
  fleet_options.policy.initial_interval = 2 * fleet_options.window;
  fleet_options.policy.initial_mtbf = 10 * kSecond;
  fleet_options.guest_steps_min = 1;
  fleet_options.guest_steps_max = 3;
  fleet_options.array_bytes = 4 * 1024;
  fleet_options.workers = workers;
  cluster::FleetManager fleet(fleet_options);
  fleet.run(3);  // every slot commits before the faults start
  cluster::FleetTortureOptions fleet_torture;
  fleet_torture.failure_models.push_back(
      {cluster::FailureModel::Kind::kExponential, 30 * kSecond, 0.7, 3 * kSecond, 11});
  fleet.arm_torture(fleet_torture);
  fleet.run(40);
  const std::string rollup = fleet.telemetry().rollup_json("node.commit_latency_ns");
  std::string rollup_error;
  if (!obs::json_lint(rollup, &rollup_error)) {
    std::fprintf(stderr, "fleet rollup failed lint: %s\n", rollup_error.c_str());
    return 1;
  }
  std::printf("fleet rollup:\n%s\n\n", rollup.c_str());
  std::printf("%s\n", fleet.accountant().table().c_str());
  // Print one black box, preferring a journal-recovered one (a node that
  // died before its first commit honestly reports an empty in-memory box).
  const std::string* box = nullptr;
  for (const auto& [slot, text] : fleet.post_mortems()) {
    if (box == nullptr) box = &text;
    if (text.find("journal black box") != std::string::npos) {
      box = &text;
      break;
    }
  }
  if (box != nullptr) std::printf("%s\n", box->c_str());

  // --- Chrome trace export ---------------------------------------------------
  const std::string trace = observer.trace().export_chrome_json();
  std::string error;
  if (!obs::json_lint(trace, &error)) {
    std::fprintf(stderr, "trace export failed lint: %s\n", error.c_str());
    return 1;
  }
  if (!obs::json_lint(metrics, &error)) {
    std::fprintf(stderr, "metrics snapshot failed lint: %s\n", error.c_str());
    return 1;
  }
  std::FILE* out = std::fopen(trace_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::fwrite(trace.data(), 1, trace.size(), out);
  std::fclose(out);
  std::printf("wrote %s (%zu events) -- load it in Perfetto or about:tracing\n",
              trace_path.c_str(), observer.trace().events().size());
  return report.ok() ? 0 : 2;
}
