// Quickstart: checkpoint a running process and restart it after a crash.
//
//   1. Boot a simulated machine and start an application on it.
//   2. Attach the recommended engine (system-level kernel thread with
//      incremental tracking) and take checkpoints while it runs.
//   3. Kill the process, restart it from the newest checkpoint chain, and
//      watch it continue exactly where it left off.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/incremental.hpp"
#include "core/systemlevel.hpp"
#include "sim/guests.hpp"

using namespace ckpt;

int main() {
  sim::register_standard_guests();

  // --- 1. a machine and an application -------------------------------------
  sim::SimKernel machine(/*ncpus=*/2);
  storage::LocalDiskBackend disk{machine.costs()};

  const sim::Pid app = machine.spawn(sim::CounterGuest::kTypeName);
  std::printf("started application as pid %d\n", app);

  // --- 2. the checkpoint engine ----------------------------------------------
  sim::KernelModule& module = machine.load_module("ckpt");
  core::EngineOptions options;
  options.incremental = true;
  options.tracker_factory = [] { return std::make_unique<core::KernelWpTracker>(); };
  core::KernelThreadEngine engine("ckpt", &disk, options, machine,
                                  core::KernelThreadEngine::ThreadConfig{}, &module);
  engine.attach(machine, app);

  for (int i = 0; i < 3; ++i) {
    machine.run_until(machine.now() + 20 * kMillisecond);
    const core::CheckpointResult result = engine.request_checkpoint(machine, app);
    std::printf("checkpoint %d: %s image, %llu bytes, latency %.3f ms\n", i + 1,
                result.kind == storage::ImageKind::kFull ? "full" : "incremental",
                static_cast<unsigned long long>(result.payload_bytes),
                to_millis(result.total_latency()));
  }

  const std::uint64_t at_crash =
      sim::CounterGuest::read_counter(machine, machine.process(app));
  std::printf("application reached count %llu -- and now it crashes\n",
              static_cast<unsigned long long>(at_crash));

  // --- 3. crash and restart --------------------------------------------------
  machine.terminate(machine.process(app), 139);
  machine.reap(app);

  const core::RestartResult restored = engine.restart(machine, app);
  if (!restored.ok) {
    std::printf("restart failed: %s\n", restored.error.c_str());
    return 1;
  }
  const std::uint64_t after_restart =
      sim::CounterGuest::read_counter(machine, machine.process(restored.pid));
  std::printf("restarted as pid %d at count %llu (work since the last checkpoint "
              "was lost, everything before it survived)\n",
              restored.pid, static_cast<unsigned long long>(after_restart));

  machine.run_until(machine.now() + 10 * kMillisecond);
  std::printf("after running again: count %llu -- onward as if nothing happened\n",
              static_cast<unsigned long long>(
                  sim::CounterGuest::read_counter(machine, machine.process(restored.pid))));
  return 0;
}
