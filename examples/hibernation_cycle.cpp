// Software-Suspend-style hibernation: freeze every process with a kernel
// signal, write the RAM image to the swap partition, power down — and boot
// a replacement machine from that image.  Also demonstrates standby (image
// to RAM) and what a battery failure does to it.
//
// Build & run:  ./build/examples/hibernation_cycle
#include <cstdio>

#include "core/hibernate.hpp"
#include "util/table.hpp"
#include "sim/guests.hpp"

using namespace ckpt;

int main() {
  sim::register_standard_guests();

  sim::SimKernel laptop;
  storage::LocalDiskBackend swap{laptop.costs()};
  storage::MemoryBackend ram{laptop.costs()};
  core::HibernationManager manager(laptop, &swap, &ram);

  std::vector<sim::Pid> apps;
  for (int i = 0; i < 3; ++i) apps.push_back(laptop.spawn(sim::CounterGuest::kTypeName));
  laptop.run_until(laptop.now() + 30 * kMillisecond);
  std::printf("three applications running; counts:");
  for (sim::Pid pid : apps) {
    std::printf(" %llu", static_cast<unsigned long long>(
                             sim::CounterGuest::read_counter(laptop, laptop.process(pid))));
  }
  std::printf("\n");

  const auto hib = manager.hibernate();
  if (!hib.ok) {
    std::printf("hibernate failed: %s\n", hib.error.c_str());
    return 1;
  }
  std::printf("hibernated: froze everything in %.3f ms, wrote %s to swap in %.3f ms "
              "total; machine is off\n",
              to_millis(hib.freeze_latency), util::format_bytes(hib.total_bytes).c_str(),
              to_millis(hib.total_latency));

  // Boot a fresh machine from the swap image (disk survives power-off).
  sim::SimKernel after_boot;
  if (!manager.resume(after_boot)) {
    std::printf("resume failed\n");
    return 1;
  }
  after_boot.run_until(after_boot.now() + 10 * kMillisecond);
  std::printf("resumed on a fresh boot; counts continued:");
  for (sim::Pid pid : apps) {
    std::printf(" %llu", static_cast<unsigned long long>(sim::CounterGuest::read_counter(
                             after_boot, after_boot.process(pid))));
  }
  std::printf(" (original pids preserved)\n");

  // Standby to RAM is far faster -- but a power cycle destroys it.
  const auto stand = manager.standby();
  std::printf("standby wrote the image to RAM in %.3f ms (vs %.3f ms to disk)\n",
              to_millis(stand.total_latency), to_millis(hib.total_latency));
  ram.power_cycle();
  sim::SimKernel unlucky;
  std::printf("after a battery failure, resume from standby %s\n",
              manager.resume(unlucky) ? "succeeded (unexpected!)"
                                      : "fails: the RAM image is gone");
  return 0;
}
