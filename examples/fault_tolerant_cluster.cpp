// Fault-tolerant capability computing: the paper's motivating scenario.
//
// An MPI-style parallel job runs across a cluster whose per-node MTBF is
// far shorter than the job duration (the BlueGene/L argument of §1).  An
// autonomic, system-level checkpointing layer takes coordinated checkpoints
// to remote stable storage; when a node dies, its ranks are re-homed on a
// surviving node and the job keeps going to completion.
//
// Build & run:  ./build/examples/fault_tolerant_cluster
#include <cstdio>

#include "cluster/failure.hpp"
#include "cluster/mpi.hpp"
#include "util/table.hpp"
#include "core/systemlevel.hpp"

using namespace ckpt;

int main() {
  sim::register_standard_guests();

  constexpr int kNodes = 4;
  constexpr int kRanks = 8;
  cluster::Cluster grid(kNodes, cluster::NodeConfig{});

  // One BLCR-style engine per node, storing to remote stable storage.
  std::vector<std::unique_ptr<core::CheckpointEngine>> engines;
  std::vector<core::CheckpointEngine*> raw;
  for (int i = 0; i < kNodes; ++i) {
    sim::SimKernel& kernel = grid.node(i).kernel();
    sim::KernelModule& module = kernel.load_module("blcr");
    engines.push_back(std::make_unique<core::KernelThreadEngine>(
        "blcr", &grid.remote_storage(), core::EngineOptions{}, kernel,
        core::KernelThreadEngine::ThreadConfig{}, &module));
    raw.push_back(engines.back().get());
  }

  cluster::MpiRankGuest::Config config;
  config.array_bytes = 64 * 1024;
  cluster::MpiJob job(grid, kRanks, config);
  job.launch();
  std::printf("launched %d-rank job across %d nodes\n", kRanks, kNodes);

  const std::uint64_t target_iterations = 4000;
  SimTime next_checkpoint = 100 * kMillisecond;
  int checkpoints = 0, failures_survived = 0;

  util::Rng failure_rng(2026);
  SimTime next_failure =
      static_cast<SimTime>(failure_rng.next_exponential(0.4e9));  // MTBF 0.4 s

  while (job.min_iteration(grid) < target_iterations && grid.now() < 60 * kSecond) {
    grid.run_until(grid.now() + 25 * kMillisecond);

    if (grid.now() >= next_checkpoint) {
      const auto result = job.coordinated_checkpoint(raw);
      if (result.ok) {
        ++checkpoints;
        std::printf("  t=%7.1f ms  coordinated checkpoint #%d: drained %llu msgs, "
                    "%s stored remotely\n",
                    to_millis(grid.now()), checkpoints,
                    static_cast<unsigned long long>(result.messages_drained),
                    util::format_bytes(result.payload_bytes).c_str());
      }
      next_checkpoint = grid.now() + 150 * kMillisecond;
    }

    if (grid.now() >= next_failure && checkpoints > 0) {
      // Pick a compute node hosting ranks and kill it.
      const int victim = job.placements().front().node;
      std::printf("  t=%7.1f ms  *** node %d fails (fail-stop) ***\n",
                  to_millis(grid.now()), victim);
      grid.fail_node(victim);
      const auto up = grid.up_nodes();
      const int target = up.front();
      if (job.restart_ranks_of_failed_node(raw, victim, target)) {
        ++failures_survived;
        std::printf("  t=%7.1f ms  ranks of node %d restarted on node %d from remote "
                    "storage; job continues\n",
                    to_millis(grid.now()), victim, target);
        // Re-establish the recovery line: the re-homed ranks run under
        // fresh pids and need a checkpoint of their own before the next
        // failure can be survived.
        const auto line = job.coordinated_checkpoint(raw);
        if (line.ok) {
          ++checkpoints;
        } else {
          std::printf("  t=%7.1f ms  recovery-line checkpoint failed: %s\n",
                      to_millis(grid.now()), line.error.c_str());
        }
        next_checkpoint = grid.now() + 150 * kMillisecond;
      } else {
        std::printf("  recovery failed!\n");
        return 1;
      }
      grid.repair_node(victim);
      // The repaired node boots a fresh kernel: re-load the checkpoint
      // module there (its old chains are obsolete — everything restorable
      // was re-persisted by the recovery-line checkpoint above).
      {
        sim::SimKernel& rebooted = grid.node(victim).kernel();
        sim::KernelModule& module = rebooted.load_module("blcr");
        engines[static_cast<std::size_t>(victim)] =
            std::make_unique<core::KernelThreadEngine>(
                "blcr", &grid.remote_storage(), core::EngineOptions{}, rebooted,
                core::KernelThreadEngine::ThreadConfig{}, &module);
        raw[static_cast<std::size_t>(victim)] =
            engines[static_cast<std::size_t>(victim)].get();
      }
      next_failure = grid.now() +
                     static_cast<SimTime>(failure_rng.next_exponential(0.4e9));
    }
  }

  std::printf("\njob reached %llu/%llu iterations on every rank after surviving %d "
              "node failures (%d coordinated checkpoints taken)\n",
              static_cast<unsigned long long>(job.min_iteration(grid)),
              static_cast<unsigned long long>(target_iterations), failures_survived,
              checkpoints);
  return job.min_iteration(grid) >= target_iterations ? 0 : 1;
}
