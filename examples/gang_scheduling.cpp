// Gang scheduling by checkpoint-based safe preemption (§1's list of
// checkpointing uses beyond fault tolerance).
//
// Two jobs share a machine.  At each slice boundary the outgoing gang is
// checkpointed to disk before being stopped, so a crash during its pause
// costs nothing; the paper calls this "safe pre-emption by another
// process".
//
// Build & run:  ./build/examples/gang_scheduling
#include <cstdio>

#include "core/gang.hpp"
#include "core/systemlevel.hpp"
#include "sim/guests.hpp"

using namespace ckpt;

int main() {
  sim::register_standard_guests();

  sim::SimKernel machine(/*ncpus=*/2);
  storage::LocalDiskBackend disk{machine.costs()};
  core::KernelSignalEngine engine("gangckpt", &disk, core::EngineOptions{}, machine,
                                  sim::kSigCkpt, nullptr);
  core::GangScheduler gang(machine, &engine);

  const std::size_t simulation = gang.add_job(
      "climate-sim", {machine.spawn(sim::CounterGuest::kTypeName),
                      machine.spawn(sim::CounterGuest::kTypeName)});
  const std::size_t analysis = gang.add_job(
      "data-analysis", {machine.spawn(sim::CounterGuest::kTypeName),
                        machine.spawn(sim::CounterGuest::kTypeName)});

  std::printf("rotating two 2-process gangs, 20 ms slices, 4 rounds\n");
  gang.rotate(20 * kMillisecond, 4);

  std::printf("progress: %-14s %llu iterations\n", "climate-sim",
              static_cast<unsigned long long>(gang.job_progress(simulation)));
  std::printf("progress: %-14s %llu iterations\n", "data-analysis",
              static_cast<unsigned long long>(gang.job_progress(analysis)));

  // Every preemption left a restorable image behind: kill a preempted
  // process outright and bring it back.
  const sim::Pid victim = gang.job_pids(simulation).front();
  const std::uint64_t taken = engine.checkpoints_taken(victim);
  std::printf("\npid %d was checkpoint-preempted %llu times; killing it...\n", victim,
              static_cast<unsigned long long>(taken));
  machine.terminate(machine.process(victim), 9);
  machine.reap(victim);
  const auto restored = engine.restart(machine, victim);
  std::printf("restart from the preemption checkpoint: %s (pid %d)\n",
              restored.ok ? "ok" : restored.error.c_str(), restored.pid);
  return restored.ok ? 0 : 1;
}
